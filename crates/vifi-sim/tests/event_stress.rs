//! EventQueue stress: random schedule/cancel/pop interleavings (including
//! cancel-after-fire) checked against a naive reference model, plus the
//! bounded-bookkeeping guarantee of the generation-stamped design.

use std::collections::VecDeque;

use proptest::prelude::*;
use vifi_sim::{EventQueue, Rng, SimTime, TimerToken};

/// Naive reference: a vector of live `(at, seq, payload)` entries, popped
/// by scanning for the (time, seq) minimum.
#[derive(Default)]
struct ModelQueue {
    live: Vec<(u64, u64, u64)>,
}

impl ModelQueue {
    fn schedule(&mut self, at: u64, seq: u64) {
        self.live.push((at, seq, seq));
    }
    fn cancel(&mut self, seq: u64) -> bool {
        match self.live.iter().position(|&(_, s, _)| s == seq) {
            Some(i) => {
                self.live.remove(i);
                true
            }
            None => false,
        }
    }
    fn pop(&mut self) -> Option<(u64, u64)> {
        let i = self
            .live
            .iter()
            .enumerate()
            .min_by_key(|(_, &(at, seq, _))| (at, seq))
            .map(|(i, _)| i)?;
        let (at, _, payload) = self.live.remove(i);
        Some((at, payload))
    }
}

/// One scripted interleaving step.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Schedule at `now + horizon_offset`.
    Schedule(u64),
    /// Cancel the k-th oldest outstanding token (live or already fired —
    /// exercising cancel-after-fire).
    Cancel(usize),
    /// Pop one event.
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u64..3, 0u64..50_000, 0usize..64).prop_map(|(kind, at, k)| match kind {
        0 => Op::Schedule(at),
        1 => Op::Cancel(k),
        _ => Op::Pop,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The real queue agrees with the reference model on every pop and
    /// every cancel return value, across arbitrary interleavings. Popped
    /// times never decrease below the last pop (monotone dispatch order is
    /// checked against the model's choice, which is globally minimal).
    #[test]
    fn interleavings_match_reference_model(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let mut q = EventQueue::new();
        let mut model = ModelQueue::default();
        // All tokens ever issued (fired ones stay — cancel-after-fire).
        let mut tokens: Vec<(TimerToken, u64)> = Vec::new();
        let mut next = 0u64;
        for op in ops {
            match op {
                Op::Schedule(at) => {
                    let tok = q.schedule(SimTime::from_micros(at), next);
                    model.schedule(at, next);
                    tokens.push((tok, next));
                    next += 1;
                }
                Op::Cancel(k) => {
                    if !tokens.is_empty() {
                        let (tok, seq) = tokens[k % tokens.len()];
                        let real = q.cancel(tok);
                        let expected = model.cancel(seq);
                        prop_assert_eq!(real, expected, "cancel seq {}", seq);
                    }
                }
                Op::Pop => {
                    let real = q.pop().map(|(at, e)| (at.as_micros(), e));
                    let expected = model.pop();
                    prop_assert_eq!(real, expected);
                }
            }
            prop_assert_eq!(q.len(), model.live.len());
            prop_assert_eq!(q.is_empty(), model.live.is_empty());
        }
        // Drain both to the end.
        loop {
            let real = q.pop().map(|(at, e)| (at.as_micros(), e));
            let expected = model.pop();
            prop_assert_eq!(real, expected);
            if expected.is_none() {
                break;
            }
        }
    }
}

#[test]
fn cancelled_bookkeeping_never_grows_unbounded() {
    // A protocol-shaped workload: every packet schedules a retransmission
    // timer that is almost always cancelled (ACKed) before firing, forever.
    // The old HashSet design kept cancelled seqs until they surfaced; the
    // generation table must stay at peak-concurrency size through a
    // million-cancel run.
    let mut q = EventQueue::new();
    let mut rng = Rng::new(42);
    let mut outstanding = VecDeque::new();
    let mut now = 0u64;
    let mut fired = 0u64;
    let mut cancelled = 0u64;
    for _ in 0..1_000_000u64 {
        now += rng.below(20);
        outstanding.push_back(q.schedule(SimTime::from_micros(now + 100_000), now));
        if outstanding.len() >= 32 {
            // 31 of 32 timers are "ACKed"; the unlucky one fires.
            let tok = outstanding.pop_front().unwrap();
            if rng.below(32) == 0 {
                while q.len() > 48 {
                    q.pop();
                    fired += 1;
                }
            } else if q.cancel(tok) {
                cancelled += 1;
            }
        }
    }
    assert!(
        cancelled > 500_000,
        "cancel-heavy by construction: {cancelled}"
    );
    assert!(fired > 0, "some timers fire");
    assert!(
        q.slots_allocated() < 256,
        "slot table must track peak concurrency, got {}",
        q.slots_allocated()
    );
}

#[test]
fn concurrent_shard_queues_under_churn_never_collide() {
    // The sharded-run layout: one queue per shard, each owned by its own
    // worker thread, all churning (schedule/cancel/pop) at once. Asserts
    // the two properties the sharded runtime leans on:
    //
    // 1. per-shard determinism — a queue's pop order is a pure function
    //    of its own operations, however the OS interleaves the workers;
    // 2. no cross-shard token/generation collisions — every token ever
    //    issued is globally unique (the shard stamp keeps same
    //    (slot, generation) pairs from different queues distinct), and a
    //    foreign shard's token is inert against another queue.
    const SHARDS: u32 = 8;

    // Reference pop order per shard, computed single-threaded.
    let churn = |shard: u32, victim: Option<TimerToken>| {
        let mut q: EventQueue<u64> = EventQueue::with_shard(shard);
        // Per-shard stream, like the runtime derives per-vehicle streams.
        let mut rng = Rng::new(99).fork(shard as u64);
        let mut tokens: Vec<TimerToken> = Vec::new();
        let mut issued: Vec<TimerToken> = Vec::new();
        for i in 0..2_000u64 {
            let tok = q.schedule(SimTime::from_micros(rng.below(50_000)), shard as u64 + i);
            tokens.push(tok);
            issued.push(tok);
            if i % 5 == 0 {
                let k = rng.below(tokens.len() as u64) as usize;
                q.cancel(tokens.swap_remove(k));
            }
            if i % 7 == 0 {
                q.pop();
            }
        }
        if let Some(v) = victim {
            // A live token from another shard must cancel nothing here.
            assert!(!q.cancel(v), "cross-shard cancel must be inert");
        }
        let mut order = Vec::new();
        while let Some(e) = q.pop() {
            order.push(e);
        }
        (order, issued)
    };

    // A live token from shard 1000 handed to every worker below.
    let mut foreign: EventQueue<u64> = EventQueue::with_shard(1000);
    let foreign_tok = foreign.schedule(SimTime::from_micros(1), 0);

    let expected: Vec<_> = (0..SHARDS).map(|s| churn(s, None)).collect();
    let concurrent: Vec<(Vec<(SimTime, u64)>, Vec<TimerToken>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SHARDS)
            .map(|s| scope.spawn(move || churn(s, Some(foreign_tok))))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });

    let mut all_tokens: std::collections::HashSet<TimerToken> = std::collections::HashSet::new();
    for (s, ((order, issued), (exp_order, exp_issued))) in
        concurrent.iter().zip(expected.iter()).enumerate()
    {
        assert_eq!(
            order, exp_order,
            "shard {s}: pop order must not depend on threading"
        );
        assert_eq!(issued, exp_issued, "shard {s}: token stream must replay");
        for tok in issued {
            assert_eq!(tok.shard(), s as u32);
            assert!(
                all_tokens.insert(*tok),
                "token collision across shards: {tok:?}"
            );
        }
    }
    // The foreign shard's event survived all eight cancel attempts.
    assert_eq!(foreign.len(), 1);
    assert!(foreign.cancel(foreign_tok), "its own queue still can");
}

#[test]
fn scheduler_after_saturates_near_the_end_of_time() {
    // A clock sitting near SimTime::MAX plus a huge relative delay must not
    // wrap (which would trip the scheduled-in-the-past assertion) or panic
    // on overflow: the deadline saturates to the MAX sentinel and fires
    // there, deterministically.
    use vifi_sim::{Scheduler, SimDuration};

    let mut s: Scheduler<&str> = Scheduler::new();
    let near_end = SimTime::from_micros(u64::MAX - 10);
    s.at(near_end, "advance");
    assert_eq!(s.step(), Some((near_end, "advance")));
    assert_eq!(s.now(), near_end);

    // 10 µs of headroom left; a 1-hour retry timer saturates to MAX.
    let tok = s.after(SimDuration::from_secs(3600), "saturated");
    assert_eq!(s.peek_time(), Some(SimTime::MAX));
    assert!(s.cancel(tok), "saturated deadline is a live, normal event");

    // Same saturation twice is the same instant: FIFO order at MAX holds.
    s.after(SimDuration::MAX, "first");
    s.after(SimDuration::from_secs(7), "second");
    assert_eq!(s.step(), Some((SimTime::MAX, "first")));
    assert_eq!(s.step(), Some((SimTime::MAX, "second")));
    assert_eq!(s.now(), SimTime::MAX);
    // Even at the clock's ceiling, relative scheduling keeps working.
    s.after(SimDuration::from_micros(1), "still-max");
    assert_eq!(s.step(), Some((SimTime::MAX, "still-max")));
    assert!(s.is_idle());
}

#[test]
fn cancel_after_fire_with_heavy_reuse_is_inert() {
    // Fire → recycle → stale cancel, thousands of times, while live timers
    // ride along: no stale token may ever kill a live event.
    let mut q = EventQueue::new();
    let mut rng = Rng::new(7);
    let mut stale: Vec<TimerToken> = Vec::new();
    let mut live_tokens: std::collections::HashMap<u64, TimerToken> =
        std::collections::HashMap::new();
    for round in 0..20_000u64 {
        let tok = q.schedule(SimTime::from_micros(round), round);
        live_tokens.insert(round, tok);
        if rng.below(2) == 0 {
            // Fires the *oldest* live event; its token goes stale.
            let (at, payload) = q.pop().expect("just scheduled");
            assert!(at <= SimTime::from_micros(round));
            let fired = live_tokens.remove(&payload).expect("fired event was live");
            stale.push(fired);
        }
        // Stale cancels must all be no-ops.
        if stale.len() >= 64 {
            for tok in stale.drain(..) {
                assert!(!q.cancel(tok), "stale token cancelled something");
            }
        }
    }
    let mut drained = 0usize;
    let mut last = SimTime::ZERO;
    while let Some((at, _)) = q.pop() {
        assert!(at >= last, "deterministic time order");
        last = at;
        drained += 1;
    }
    assert_eq!(
        drained,
        live_tokens.len(),
        "every live event survives stale cancels"
    );
}
