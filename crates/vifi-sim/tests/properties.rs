//! Property-based tests for the simulation substrate.

use proptest::prelude::*;
use vifi_sim::{EventQueue, Rng, Scheduler, SimDuration, SimTime};

proptest! {
    /// Events always pop in non-decreasing time order, regardless of the
    /// insertion order and cancellation pattern.
    #[test]
    fn queue_pops_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200),
                         cancel_mask in proptest::collection::vec(any::<bool>(), 1..200)) {
        let mut q = EventQueue::new();
        let tokens: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule(SimTime::from_micros(t), i))
            .collect();
        let mut expected = times.len();
        for (tok, &dead) in tokens.iter().zip(cancel_mask.iter().chain(std::iter::repeat(&false))) {
            if dead && q.cancel(*tok) {
                expected -= 1;
            }
        }
        let mut last = SimTime::ZERO;
        let mut n = 0;
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= last);
            last = at;
            n += 1;
        }
        prop_assert_eq!(n, expected);
    }

    /// FIFO among equal timestamps: payload order equals insertion order.
    #[test]
    fn queue_fifo_on_ties(n in 1usize..100) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(SimTime::from_secs(7), i);
        }
        for i in 0..n {
            prop_assert_eq!(q.pop().map(|(_, e)| e), Some(i));
        }
    }

    /// The same seed yields the same stream; different seeds diverge fast.
    #[test]
    fn rng_reproducible(seed in any::<u64>()) {
        let mut a = Rng::new(seed);
        let mut b = Rng::new(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// `below(n)` is always within range.
    #[test]
    fn rng_below_in_range(seed in any::<u64>(), n in 1u64..10_000) {
        let mut r = Rng::new(seed);
        for _ in 0..64 {
            prop_assert!(r.below(n) < n);
        }
    }

    /// Forked streams are independent of parent stream position.
    #[test]
    fn rng_fork_stable(seed in any::<u64>(), label in any::<u64>(), advance in 0usize..32) {
        let fresh = Rng::new(seed);
        let mut advanced = Rng::new(seed);
        for _ in 0..advance {
            advanced.next_u64();
        }
        let mut c1 = fresh.fork(label);
        let mut c2 = advanced.fork(label);
        for _ in 0..16 {
            prop_assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }

    /// Scheduler clock is monotone over arbitrary event programs.
    #[test]
    fn scheduler_clock_monotone(delays in proptest::collection::vec(0u64..10_000, 1..100)) {
        let mut s: Scheduler<usize> = Scheduler::new();
        for (i, &d) in delays.iter().enumerate() {
            s.after(SimDuration::from_micros(d), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((at, _)) = s.step() {
            prop_assert!(at >= last);
            prop_assert_eq!(s.now(), at);
            last = at;
        }
    }
}
