//! # vifi-testbeds — synthetic VanLAN and DieselNet
//!
//! The paper's evidence comes from two deployments we cannot access:
//! VanLAN (11 BSes + shuttles on the Microsoft Redmond campus) and
//! DieselNet (buses in Amherst logging beacons from town/shop APs). This
//! crate builds their synthetic stand-ins:
//!
//! * [`scenario`] — the common description: nodes, mobility, radio
//!   parameters, and construction of the physical link model;
//! * [`vanlan()`](vanlan::vanlan) — 11 BSes on five buildings inside the 828 m × 559 m box of
//!   Fig. 1, plus a shuttle loop that enters and leaves coverage (the
//!   "about ten visits a day" pattern, time-compressed; see DESIGN.md);
//! * [`dieselnet`] — the sparser college-town layouts for Channel 1
//!   (10 BSes) and Channel 6 (14 BSes);
//! * [`metro()`](metro::metro) — a whole city of radio-disjoint VanLAN
//!   districts on a 10 km grid sharing one backplane, the multi-cluster
//!   scenario behind the hierarchically-synchronized coupled engine
//!   (see [`Scenario::contact_clusters`]);
//! * [`trace`] — the beacon-log schema the buses recorded, generation of
//!   synthetic logs from a scenario, (de)serialization, and the §5.1
//!   trace-to-simulation pipeline (per-second beacon loss ratios → link
//!   loss rates; never-co-visible BS pairs unreachable; other inter-BS
//!   loss uniform at random).
//!
//! Calibration: the `fig5` bench measures these models with the paper's own
//! estimator (CDF of BSes heard per second) — the knob-turning lives here,
//! the verification lives there.
//!
//! ## Fleets
//!
//! Both testbeds scale past the paper's instrumentation: `vanlan(n)`
//! builds an `n`-van fleet on per-vehicle routes (odd vans drive the loop
//! in reverse, everyone phase-offset), and
//! [`dieselnet_fleet`] synthesizes a whole bus
//! fleet with per-seed schedules ([`dieselnet::bus_schedules`]). Every
//! generator is deterministic: the same arguments (and seed, where one is
//! taken) reproduce the same scenario bit for bit.
//!
//! Fleet quickstart — build a four-van VanLAN fleet and inspect each
//! van's contact windows:
//!
//! ```
//! use vifi_sim::Rng;
//! use vifi_testbeds::{dieselnet_fleet, vanlan};
//!
//! let fleet = vanlan(4);
//! assert_eq!(fleet.vehicle_ids().len(), 4);
//!
//! // Each van alternates in and out of BS coverage on its own schedule.
//! let link = fleet.build_link_model(&Rng::new(1));
//! for &van in &fleet.vehicle_ids() {
//!     let windows = fleet.contact_windows(van, &link, 0.1);
//!     assert!(!windows.is_empty(), "every van visits the campus");
//!     // Windows are sorted and disjoint.
//!     for pair in windows.windows(2) {
//!         assert!(pair[0].1 <= pair[1].0);
//!     }
//! }
//!
//! // DieselNet fleets synthesize per-bus schedules from a seed.
//! let buses = dieselnet_fleet(8, 42);
//! assert_eq!(buses.vehicle_ids().len(), 8);
//! assert_eq!(buses.bs_ids().len(), 14);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dieselnet;
pub mod metro;
pub mod scenario;
pub mod trace;
pub mod vanlan;

pub use dieselnet::{bus_schedules, dieselnet_ch1, dieselnet_ch6, dieselnet_fleet, BusSchedule};
pub use metro::metro;
pub use scenario::{NodeSpec, Scenario};
pub use trace::{
    generate_beacon_trace, generate_fleet_beacon_traces, BeaconRecord, BeaconTrace, TraceSimSetup,
};
pub use vanlan::vanlan;
