//! # vifi-testbeds — synthetic VanLAN and DieselNet
//!
//! The paper's evidence comes from two deployments we cannot access:
//! VanLAN (11 BSes + shuttles on the Microsoft Redmond campus) and
//! DieselNet (buses in Amherst logging beacons from town/shop APs). This
//! crate builds their synthetic stand-ins:
//!
//! * [`scenario`] — the common description: nodes, mobility, radio
//!   parameters, and construction of the physical link model;
//! * [`vanlan()`](vanlan::vanlan) — 11 BSes on five buildings inside the 828 m × 559 m box of
//!   Fig. 1, plus a shuttle loop that enters and leaves coverage (the
//!   "about ten visits a day" pattern, time-compressed; see DESIGN.md);
//! * [`dieselnet`] — the sparser college-town layouts for Channel 1
//!   (10 BSes) and Channel 6 (14 BSes);
//! * [`trace`] — the beacon-log schema the buses recorded, generation of
//!   synthetic logs from a scenario, (de)serialization, and the §5.1
//!   trace-to-simulation pipeline (per-second beacon loss ratios → link
//!   loss rates; never-co-visible BS pairs unreachable; other inter-BS
//!   loss uniform at random).
//!
//! Calibration: the `fig5` bench measures these models with the paper's own
//! estimator (CDF of BSes heard per second) — the knob-turning lives here,
//! the verification lives there.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dieselnet;
pub mod scenario;
pub mod trace;
pub mod vanlan;

pub use dieselnet::{dieselnet_ch1, dieselnet_ch6};
pub use scenario::{NodeSpec, Scenario};
pub use trace::{generate_beacon_trace, BeaconRecord, BeaconTrace, TraceSimSetup};
pub use vanlan::vanlan;
