//! The synthetic metro-scale testbed: many disjoint city districts.
//!
//! Metro deployments are the regime where ViFi's locality actually shows:
//! a vehicle only ever interacts with the basestations of its own
//! district, yet the whole city shares one wired backplane. This is the
//! scale Zheng et al. target for vehicular Internet access and the
//! infrastructure-side district knowledge Wi-Fi Assist assumes (see
//! PAPERS.md) — and the first scenario in this repo whose contact graph
//! genuinely decomposes into multiple clusters
//! ([`Scenario::contact_clusters`]), which is what the hierarchical
//! coupled engine synchronizes per-district.
//!
//! Each district is a full VanLAN campus — the eleven rooftop BSes and
//! the shuttle loop of [`crate::vanlan()`] — translated onto a city grid
//! with 10 km between district origins. The VanLAN loop never strays more
//! than ~600 m from its campus box, so districts are radio-disjoint by
//! an enormous margin: over-the-air contact across districts is
//! impossible, exactly one contact cluster forms per district. The seed
//! rotates each district's shuttle schedule (a per-district phase shift
//! of every van along the loop), so different seeds give genuinely
//! different fleets while everything stays a pure function of
//! `(districts, vans_per_district, seed)`.

use vifi_phy::link::MobilitySource;
use vifi_phy::{kmh_to_ms, NodeId, NodeKind, Point, RadioParams, Route};
use vifi_sim::{Rng, SimDuration};

use crate::scenario::{NodeSpec, Scenario};
use crate::vanlan::{shuttle_waypoints, BS_POSITIONS};

/// Meters between district origins on the city grid. The VanLAN loop
/// (campus box plus out-of-range leg) fits well inside 2 km, so 10 km
/// guarantees no radio path between districts.
pub const DISTRICT_SPACING_M: f64 = 10_000.0;

/// The grid origin of district `d` in a `districts`-strong city:
/// row-major on a near-square grid.
pub fn district_origin(d: u32, districts: u32) -> Point {
    let cols = (districts as f64).sqrt().ceil().max(1.0) as u32;
    Point::new(
        (d % cols) as f64 * DISTRICT_SPACING_M,
        (d / cols) as f64 * DISTRICT_SPACING_M,
    )
}

/// The route van `v` of district `d` drives: the VanLAN shuttle loop
/// translated to the district origin, odd vans reversed, every van at
/// its own phase offset, and the whole district rotated by a seeded
/// phase so no two districts (and no two seeds) convoy in lock-step.
fn district_route(origin: Point, v: u32, vans: u32, district_phase: f64) -> Route {
    let mut waypoints: Vec<Point> = shuttle_waypoints()
        .into_iter()
        .map(|p| Point::new(p.x + origin.x, p.y + origin.y))
        .collect();
    if v % 2 == 1 {
        waypoints.reverse();
    }
    let route = Route::new(waypoints, kmh_to_ms(40.0), true);
    let offset = route.length() * ((v as f64 / vans as f64 + district_phase) % 1.0);
    route.with_start_offset(offset)
}

/// Build the metro scenario: `districts` radio-disjoint VanLAN campuses
/// on a 10 km city grid, each served by `vans_per_district` shuttles on
/// district-local loops, all basestations on one shared backplane. Node
/// ids are dense with every BS first (district-major: district 0's
/// eleven BSes, then district 1's, …) followed by every van
/// (district-major likewise) — so the id order groups each kind by
/// district and [`Scenario::contact_clusters`] yields exactly one
/// cluster per district. Deterministic in `(districts, vans_per_district,
/// seed)`.
pub fn metro(districts: u32, vans_per_district: u32, seed: u64) -> Scenario {
    assert!(districts >= 1, "need at least one district");
    assert!(vans_per_district >= 1, "need at least one van per district");
    let root = Rng::new(seed).fork_named("metro-districts");
    let mut nodes = Vec::new();
    for d in 0..districts {
        let origin = district_origin(d, districts);
        for (i, &(x, y)) in BS_POSITIONS.iter().enumerate() {
            nodes.push(NodeSpec {
                id: NodeId(nodes.len() as u32),
                kind: NodeKind::Basestation,
                mobility: MobilitySource::Fixed(Point::new(x + origin.x, y + origin.y)),
                name: format!("BS-{d}.{i}"),
            });
        }
    }
    let mut lap = SimDuration::ZERO;
    for d in 0..districts {
        let origin = district_origin(d, districts);
        let mut rng = root.fork(d as u64);
        let district_phase = rng.next_f64();
        for v in 0..vans_per_district {
            let route = district_route(origin, v, vans_per_district, district_phase);
            lap = lap.max(SimDuration::from_secs_f64(route.lap_time_s()));
            nodes.push(NodeSpec {
                id: NodeId(nodes.len() as u32),
                kind: NodeKind::Vehicle,
                mobility: MobilitySource::Mobile(route),
                name: format!("van-{d}.{v}"),
            });
        }
    }
    Scenario {
        name: "Metro".into(),
        nodes,
        radio: RadioParams::default(),
        lap,
        visits_per_day: 10,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vifi_sim::SimTime;

    #[test]
    fn scenario_shape_and_naming() {
        let s = metro(4, 3, 7);
        s.validate();
        assert_eq!(s.bs_ids().len(), 4 * 11);
        assert_eq!(s.vehicle_ids().len(), 4 * 3);
        assert_eq!(s.node(NodeId(0)).name, "BS-0.0");
        assert_eq!(s.node(NodeId(11)).name, "BS-1.0");
        assert_eq!(s.node(s.vehicle_ids()[0]).name, "van-0.0");
        assert_eq!(s.visits_per_day, 10);
        assert!(s.lap > SimDuration::from_secs(300));
    }

    #[test]
    fn districts_are_radio_disjoint_by_construction() {
        // Every node of district d stays within ~2 km of its origin;
        // origins are 10 km apart. Check worst-case geometry directly.
        let s = metro(5, 2, 1);
        let origin = |name: &str| {
            let d: u32 = name.split(&['-', '.'][..]).nth(1).unwrap().parse().unwrap();
            district_origin(d, 5)
        };
        for sec in [0u64, 120, 400] {
            let t = SimTime::from_secs(sec);
            for n in &s.nodes {
                let o = origin(&n.name);
                assert!(
                    s.position(n.id, t).distance(o) < 2_500.0,
                    "{} strays from its district at {t}",
                    n.name
                );
            }
        }
    }

    #[test]
    fn contact_clusters_find_one_component_per_district() {
        let s = metro(4, 2, 7);
        let link = s.build_link_model(&Rng::new(3));
        let clusters = s.contact_clusters(&link);
        assert_eq!(clusters.len(), 4, "one cluster per district");
        // Each cluster holds exactly its district's 11 BSes + 2 vans.
        for (d, cluster) in clusters.iter().enumerate() {
            assert_eq!(cluster.len(), 13, "district {d}");
            for &n in cluster {
                let name = &s.node(n).name;
                assert!(name.contains(&format!("-{d}.")), "{name} in cluster {d}");
            }
        }
    }

    #[test]
    fn seed_rotates_schedules_deterministically() {
        let a = metro(3, 4, 7);
        let b = metro(3, 4, 7);
        let c = metro(3, 4, 8);
        let vs = a.vehicle_ids();
        for &v in &vs {
            for sec in [0u64, 90, 333] {
                let t = SimTime::from_secs(sec);
                assert_eq!(a.position(v, t), b.position(v, t), "same seed agrees");
            }
        }
        // A different seed shifts at least one district's schedule.
        let moved = vs.iter().any(|&v| {
            a.position(v, SimTime::ZERO)
                .distance(c.position(v, SimTime::ZERO))
                > 1.0
        });
        assert!(moved, "seed must matter");
    }

    #[test]
    fn single_district_metro_degenerates_to_one_cluster() {
        let s = metro(1, 2, 5);
        let link = s.build_link_model(&Rng::new(2));
        let clusters = s.contact_clusters(&link);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), s.nodes.len());
    }
}
