//! Scenario description: the nodes, their motion, and the radio
//! environment of one testbed.

use std::collections::BTreeMap;

use vifi_phy::link::MobilitySource;
use vifi_phy::{NodeId, NodeKind, PhysicalLinkModel, Point, RadioParams};
use vifi_sim::{Rng, SimDuration, SimTime};

/// One node in a scenario.
#[derive(Clone, Debug)]
pub struct NodeSpec {
    /// Identifier, unique within the scenario; ids are dense from 0.
    pub id: NodeId,
    /// Vehicle, basestation, or wired host.
    pub kind: NodeKind,
    /// How it moves.
    pub mobility: MobilitySource,
    /// Human-readable name for logs and figures ("BS-3", "van-1").
    pub name: String,
}

/// A complete testbed description.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Testbed name ("VanLAN", "DieselNet-Ch1", …).
    pub name: String,
    /// All nodes. Ids must be dense `0..nodes.len()`.
    pub nodes: Vec<NodeSpec>,
    /// Radio-chain parameters.
    pub radio: RadioParams,
    /// Time one "visit cycle" takes (one shuttle lap for VanLAN, one bus
    /// loop for DieselNet) — experiments size their runs in laps so that
    /// per-day numbers can be extrapolated honestly (see DESIGN.md on time
    /// compression).
    pub lap: SimDuration,
    /// How many visit cycles the real testbed saw per day (VanLAN §2.1:
    /// "each vehicle visits the region of the BSes about ten times a day").
    pub visits_per_day: u32,
}

impl Scenario {
    /// Validate invariants (dense ids, at least one vehicle and one BS).
    pub fn validate(&self) {
        for (i, n) in self.nodes.iter().enumerate() {
            assert_eq!(n.id.index(), i, "node ids must be dense and ordered");
        }
        assert!(
            self.nodes.iter().any(|n| n.kind == NodeKind::Vehicle),
            "scenario needs a vehicle"
        );
        assert!(
            self.nodes.iter().any(|n| n.kind == NodeKind::Basestation),
            "scenario needs a basestation"
        );
    }

    /// Ids of all basestations, in id order.
    pub fn bs_ids(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Basestation)
            .map(|n| n.id)
            .collect()
    }

    /// Ids of all vehicles, in id order.
    pub fn vehicle_ids(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Vehicle)
            .map(|n| n.id)
            .collect()
    }

    /// The spec for a node id.
    pub fn node(&self, id: NodeId) -> &NodeSpec {
        &self.nodes[id.index()]
    }

    /// Construct the physical link model for this scenario.
    pub fn build_link_model(&self, rng: &Rng) -> PhysicalLinkModel {
        self.validate();
        let mut m = PhysicalLinkModel::new(self.radio.clone(), rng);
        for n in &self.nodes {
            m.add_node(n.id, n.kind, n.mobility.clone());
        }
        m
    }

    /// A copy of this scenario restricted to the given basestations (all
    /// vehicles and wired nodes kept). Node ids are re-densified; the
    /// mapping `old → new` is returned alongside. Used by the Fig. 2
    /// BS-density sweep.
    pub fn with_bs_subset(&self, keep: &[NodeId]) -> (Scenario, Vec<(NodeId, NodeId)>) {
        let mut nodes = Vec::new();
        let mut mapping = Vec::new();
        for n in &self.nodes {
            let kept = match n.kind {
                NodeKind::Basestation => keep.contains(&n.id),
                _ => true,
            };
            if kept {
                let new_id = NodeId(nodes.len() as u32);
                mapping.push((n.id, new_id));
                nodes.push(NodeSpec {
                    id: new_id,
                    kind: n.kind,
                    mobility: n.mobility.clone(),
                    name: n.name.clone(),
                });
            }
        }
        (
            Scenario {
                name: format!("{}[{} BSes]", self.name, keep.len()),
                nodes,
                radio: self.radio.clone(),
                lap: self.lap,
                visits_per_day: self.visits_per_day,
            },
            mapping,
        )
    }

    /// A copy of this scenario restricted to the given vehicles (all
    /// basestations and wired nodes kept). Node ids are re-densified; the
    /// mapping `old → new` is returned alongside. This is the sub-scenario
    /// builder behind sharded fleet runs: each shard simulates its own
    /// vehicles against the full infrastructure. When every vehicle is
    /// kept the copy is node-for-node identical to `self` (ids included).
    pub fn with_vehicle_subset(&self, keep: &[NodeId]) -> (Scenario, Vec<(NodeId, NodeId)>) {
        let mut nodes = Vec::new();
        let mut mapping = Vec::new();
        for n in &self.nodes {
            let kept = match n.kind {
                NodeKind::Vehicle => keep.contains(&n.id),
                _ => true,
            };
            if kept {
                let new_id = NodeId(nodes.len() as u32);
                mapping.push((n.id, new_id));
                nodes.push(NodeSpec {
                    id: new_id,
                    kind: n.kind,
                    mobility: n.mobility.clone(),
                    name: n.name.clone(),
                });
            }
        }
        (
            Scenario {
                name: self.name.clone(),
                nodes,
                radio: self.radio.clone(),
                lap: self.lap,
                visits_per_day: self.visits_per_day,
            },
            mapping,
        )
    }

    /// Partition this scenario's vehicles into `shards` disjoint groups,
    /// round-robin in vehicle-id order (vehicle *i* lands in shard
    /// `i % shards`). Every vehicle appears in exactly one group; trailing
    /// groups may be empty when `shards` exceeds the fleet size. The
    /// assignment is a pure function of the scenario, so a sharded run's
    /// plan is as deterministic as the run itself.
    pub fn shard_partition(&self, shards: usize) -> Vec<Vec<NodeId>> {
        assert!(shards >= 1, "need at least one shard");
        let mut groups: Vec<Vec<NodeId>> = vec![Vec::new(); shards];
        for (i, v) in self.vehicle_ids().into_iter().enumerate() {
            groups[i % shards].push(v);
        }
        groups
    }

    /// Like [`Scenario::shard_partition`], but balanced by expected load:
    /// each vehicle is weighted by its covered seconds per lap (total
    /// [`Scenario::contact_windows`] length against `link` at `min_prob`,
    /// plus one so fully-out-of-range vehicles still count), and vehicles
    /// are placed heaviest-first onto the lightest shard (longest
    /// processing time). Useful when contact schedules are lopsided —
    /// e.g. DieselNet fleets where some buses barely touch the town core —
    /// so no worker ends up owning all the busy vehicles. Ties break by
    /// vehicle id, keeping the plan deterministic.
    pub fn shard_partition_by_contact(
        &self,
        shards: usize,
        link: &PhysicalLinkModel,
        min_prob: f64,
    ) -> Vec<Vec<NodeId>> {
        assert!(shards >= 1, "need at least one shard");
        let mut weighted: Vec<(u64, NodeId)> = self
            .vehicle_ids()
            .into_iter()
            .map(|v| {
                let covered: u64 = self
                    .contact_windows(v, link, min_prob)
                    .iter()
                    .map(|(a, b)| b - a)
                    .sum();
                (covered + 1, v)
            })
            .collect();
        // Heaviest first; ties by id so the plan is reproducible.
        weighted.sort_by_key(|&(w, v)| (std::cmp::Reverse(w), v));
        let mut groups: Vec<Vec<NodeId>> = vec![Vec::new(); shards];
        let mut loads = vec![0u64; shards];
        for (w, v) in weighted {
            let lightest = (0..shards)
                .min_by_key(|&s| (loads[s], s))
                .expect(">=1 shard");
            loads[lightest] += w;
            groups[lightest].push(v);
        }
        groups
    }

    /// Position of a node at a given time (convenience for map rendering).
    pub fn position(&self, id: NodeId, t: SimTime) -> Point {
        self.node(id).mobility.position_at(t)
    }

    /// The contact windows of one vehicle over a single lap: maximal
    /// `[start, end)` second intervals during which the vehicle can hear
    /// at least one basestation with slow-fading delivery probability
    /// above `min_prob`. Windows are returned sorted and disjoint —
    /// fleet schedulers and the fleet property tests lean on both
    /// invariants. Sampled at 1 Hz against `link` (build it with
    /// [`Scenario::build_link_model`]), the same granularity as the
    /// testbeds' GPS and beacon logs.
    pub fn contact_windows(
        &self,
        vehicle: NodeId,
        link: &PhysicalLinkModel,
        min_prob: f64,
    ) -> Vec<(u64, u64)> {
        assert_eq!(
            self.node(vehicle).kind,
            NodeKind::Vehicle,
            "contact windows are defined for vehicles"
        );
        let bs = self.bs_ids();
        let lap_s = self.lap.as_secs();
        let mut windows = Vec::new();
        let mut open: Option<u64> = None;
        for sec in 0..lap_s {
            let t = SimTime::from_secs(sec);
            let covered = bs.iter().any(|&b| link.slow_prob(b, vehicle, t) > min_prob);
            match (covered, open) {
                (true, None) => open = Some(sec),
                (false, Some(start)) => {
                    windows.push((start, sec));
                    open = None;
                }
                _ => {}
            }
        }
        if let Some(start) = open {
            windows.push((start, lap_s));
        }
        windows
    }

    /// Contact-overlap analysis for the coupled-run planner: per
    /// basestation, the total seconds over one lap during which *any*
    /// vehicle can hear it above `min_prob` (plus one, so never-visited
    /// BSes still carry weight). A BS's protocol work — receptions, relay
    /// decisions, acks — scales with how long vehicles sit in its cell,
    /// so these weights drive the load-balanced BS→shard assignment.
    /// Deterministic: a pure function of geometry. Returned in id order.
    pub fn bs_contact_seconds(
        &self,
        link: &PhysicalLinkModel,
        min_prob: f64,
    ) -> Vec<(NodeId, u64)> {
        let vehicles = self.vehicle_ids();
        let lap_s = self.lap.as_secs();
        self.bs_ids()
            .into_iter()
            .map(|bs| {
                let mut covered = 0u64;
                for sec in 0..lap_s {
                    let t = SimTime::from_secs(sec);
                    if vehicles
                        .iter()
                        .any(|&v| link.slow_prob(bs, v, t) > min_prob)
                    {
                        covered += 1;
                    }
                }
                (bs, covered + 1)
            })
            .collect()
    }

    /// The seconds of `[0, horizon_s)` during which cross-shard radio
    /// interaction is possible: some vehicle is within radio range of a
    /// basestation or of another vehicle. Each active second is dilated
    /// by ±`margin_s` (callers pass at least the beacon period plus one
    /// second, covering intra-second motion and beacon-staleness — the
    /// lookahead a conservative scheme needs), and the result is merged
    /// into sorted, disjoint `[start, end)` ranges. Outside these ranges
    /// the whole fleet is silent air: coupled runs stretch their epochs
    /// there and shards run free.
    pub fn active_seconds(
        &self,
        link: &PhysicalLinkModel,
        horizon_s: u64,
        margin_s: u64,
    ) -> Vec<(u64, u64)> {
        self.active_seconds_for(
            link,
            horizon_s,
            margin_s,
            &self.vehicle_ids(),
            &self.bs_ids(),
        )
    }

    /// [`Scenario::active_seconds`] restricted to one cluster: only
    /// contact among `members` (its vehicles against its basestations or
    /// each other) makes a second active. Because contact clusters are
    /// radio-disjoint by construction ([`Scenario::contact_clusters`]),
    /// the union of every cluster's ranges equals the fleet-level
    /// [`Scenario::active_seconds`] — per-cluster schedules never lose an
    /// active second, they only stop charging one cluster for another's.
    pub fn cluster_active_seconds(
        &self,
        link: &PhysicalLinkModel,
        horizon_s: u64,
        margin_s: u64,
        members: &[NodeId],
    ) -> Vec<(u64, u64)> {
        let vehicles: Vec<NodeId> = members
            .iter()
            .copied()
            .filter(|&n| self.node(n).kind == NodeKind::Vehicle)
            .collect();
        let bs: Vec<NodeId> = members
            .iter()
            .copied()
            .filter(|&n| self.node(n).kind == NodeKind::Basestation)
            .collect();
        self.active_seconds_for(link, horizon_s, margin_s, &vehicles, &bs)
    }

    fn active_seconds_for(
        &self,
        link: &PhysicalLinkModel,
        horizon_s: u64,
        margin_s: u64,
        vehicles: &[NodeId],
        bs: &[NodeId],
    ) -> Vec<(u64, u64)> {
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for sec in 0..horizon_s {
            let t = SimTime::from_secs(sec);
            let active = vehicles.iter().enumerate().any(|(i, &v)| {
                bs.iter().any(|&b| link.slow_prob(b, v, t) > 0.0)
                    || vehicles[i + 1..]
                        .iter()
                        .any(|&w| link.slow_prob(v, w, t) > 0.0)
            });
            if !active {
                continue;
            }
            let lo = sec.saturating_sub(margin_s);
            let hi = (sec + margin_s + 1).min(horizon_s.max(1));
            match ranges.last_mut() {
                Some(last) if lo <= last.1 => last.1 = last.1.max(hi),
                _ => ranges.push((lo, hi)),
            }
        }
        ranges
    }

    /// Decompose the fleet into **contact clusters**: the connected
    /// components of the audibility graph, whose edges are every node
    /// pair that is ever within radio range (`slow_prob > 0` in either
    /// direction). Vehicle–BS and vehicle–vehicle pairs are sampled at
    /// 1 Hz over one full lap — the same granularity as
    /// [`Scenario::contact_windows`], and lap-long so the decomposition
    /// is independent of any particular run's horizon — while BS–BS pairs
    /// are sampled once at `t = 0` (fixed infrastructure does not move).
    ///
    /// Nodes in different clusters can *never* interact over the air, so
    /// a coupled run may synchronize each cluster on its own fine-epoch
    /// schedule and rendezvous fleet-wide only on the coarse grid where
    /// backplane coupling resolves (see `HierarchicalSchedule` in
    /// `vifi-sim`). Merging clusters is always sound (it merely
    /// over-synchronizes); splitting a real component would lose physics,
    /// which is why edges use the conservative `> 0` criterion rather
    /// than a delivery threshold.
    ///
    /// Every node appears in exactly one cluster (singletons included).
    /// Within a cluster nodes are sorted by id; clusters are ordered by
    /// their smallest node id. A pure function of the scenario and link
    /// geometry — never of shard or worker count.
    pub fn contact_clusters(&self, link: &PhysicalLinkModel) -> Vec<Vec<NodeId>> {
        let n = self.nodes.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]]; // path halving
                x = parent[x];
            }
            x
        }
        let union = |parent: &mut [usize], a: usize, b: usize| {
            let (ra, rb) = (find(parent, a), find(parent, b));
            if ra != rb {
                // Root at the smaller index: deterministic structure.
                let (lo, hi) = (ra.min(rb), ra.max(rb));
                parent[hi] = lo;
            }
        };
        let vehicles = self.vehicle_ids();
        let bs = self.bs_ids();
        for i in 0..bs.len() {
            for j in i + 1..bs.len() {
                if find(&mut parent, bs[i].index()) == find(&mut parent, bs[j].index()) {
                    continue;
                }
                let t = SimTime::ZERO;
                if link.slow_prob(bs[i], bs[j], t) > 0.0 || link.slow_prob(bs[j], bs[i], t) > 0.0 {
                    union(&mut parent, bs[i].index(), bs[j].index());
                }
            }
        }
        for sec in 0..self.lap.as_secs().max(1) {
            let t = SimTime::from_secs(sec);
            for (i, &v) in vehicles.iter().enumerate() {
                for &b in &bs {
                    if find(&mut parent, v.index()) == find(&mut parent, b.index()) {
                        continue;
                    }
                    if link.slow_prob(b, v, t) > 0.0 || link.slow_prob(v, b, t) > 0.0 {
                        union(&mut parent, v.index(), b.index());
                    }
                }
                for &w in &vehicles[i + 1..] {
                    if find(&mut parent, v.index()) == find(&mut parent, w.index()) {
                        continue;
                    }
                    if link.slow_prob(v, w, t) > 0.0 || link.slow_prob(w, v, t) > 0.0 {
                        union(&mut parent, v.index(), w.index());
                    }
                }
            }
        }
        let mut by_root: BTreeMap<usize, Vec<NodeId>> = BTreeMap::new();
        for node in &self.nodes {
            by_root
                .entry(find(&mut parent, node.id.index()))
                .or_default()
                .push(node.id);
        }
        // BTreeMap iteration gives roots in ascending order, and the root
        // is each component's smallest index, so clusters come out ordered
        // by smallest member with members already in id order.
        by_root.into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vifi_phy::{LinkModel, Route};

    fn tiny() -> Scenario {
        Scenario {
            name: "tiny".into(),
            nodes: vec![
                NodeSpec {
                    id: NodeId(0),
                    kind: NodeKind::Basestation,
                    mobility: MobilitySource::Fixed(Point::new(0.0, 0.0)),
                    name: "BS-0".into(),
                },
                NodeSpec {
                    id: NodeId(1),
                    kind: NodeKind::Basestation,
                    mobility: MobilitySource::Fixed(Point::new(100.0, 0.0)),
                    name: "BS-1".into(),
                },
                NodeSpec {
                    id: NodeId(2),
                    kind: NodeKind::Vehicle,
                    mobility: MobilitySource::Mobile(Route::new(
                        vec![Point::new(0.0, 50.0), Point::new(100.0, 50.0)],
                        10.0,
                        true,
                    )),
                    name: "van-0".into(),
                },
            ],
            radio: RadioParams::default(),
            lap: SimDuration::from_secs(20),
            visits_per_day: 10,
        }
    }

    #[test]
    fn id_queries() {
        let s = tiny();
        s.validate();
        assert_eq!(s.bs_ids(), vec![NodeId(0), NodeId(1)]);
        assert_eq!(s.vehicle_ids(), vec![NodeId(2)]);
        assert_eq!(s.node(NodeId(0)).name, "BS-0");
    }

    #[test]
    fn builds_link_model() {
        let s = tiny();
        let m = s.build_link_model(&Rng::new(1));
        assert_eq!(m.nodes().len(), 3);
        assert_eq!(m.kind(NodeId(2)), NodeKind::Vehicle);
    }

    #[test]
    fn bs_subset_redensifies_ids() {
        let s = tiny();
        let (sub, mapping) = s.with_bs_subset(&[NodeId(1)]);
        sub.validate();
        assert_eq!(sub.nodes.len(), 2);
        assert_eq!(sub.bs_ids(), vec![NodeId(0)]);
        assert_eq!(sub.node(NodeId(0)).name, "BS-1");
        assert_eq!(sub.vehicle_ids(), vec![NodeId(1)]);
        assert!(mapping.contains(&(NodeId(1), NodeId(0))));
        assert!(mapping.contains(&(NodeId(2), NodeId(1))));
    }

    #[test]
    #[should_panic(expected = "needs a basestation")]
    fn subset_with_no_bs_is_invalid() {
        let s = tiny();
        let (sub, _) = s.with_bs_subset(&[]);
        sub.validate();
    }

    #[test]
    fn vehicle_subset_keeps_infrastructure() {
        let s = crate::vanlan(4);
        let vs = s.vehicle_ids();
        let (sub, mapping) = s.with_vehicle_subset(&[vs[2]]);
        sub.validate();
        assert_eq!(sub.bs_ids().len(), s.bs_ids().len());
        assert_eq!(sub.vehicle_ids().len(), 1);
        // The kept vehicle's route is untouched (positions agree).
        let new_id = mapping
            .iter()
            .find(|&&(old, _)| old == vs[2])
            .map(|&(_, new)| new)
            .unwrap();
        for sec in [0u64, 40, 200] {
            let t = SimTime::from_secs(sec);
            assert_eq!(s.position(vs[2], t), sub.position(new_id, t));
        }
    }

    #[test]
    fn full_vehicle_subset_is_identity() {
        let s = crate::vanlan(3);
        let (sub, mapping) = s.with_vehicle_subset(&s.vehicle_ids());
        assert_eq!(sub.nodes.len(), s.nodes.len());
        for (old, new) in mapping {
            assert_eq!(old, new, "keeping everything must not renumber");
        }
    }

    #[test]
    fn shard_partition_is_disjoint_and_covering() {
        let s = crate::vanlan(8);
        for shards in [1usize, 2, 3, 4, 8, 11] {
            let groups = s.shard_partition(shards);
            assert_eq!(groups.len(), shards);
            let mut all: Vec<NodeId> = groups.iter().flatten().copied().collect();
            all.sort_by_key(|n| n.index());
            all.dedup();
            assert_eq!(all, s.vehicle_ids(), "shards={shards}");
        }
        // Round-robin: vehicle i lands in shard i % shards.
        let groups = s.shard_partition(3);
        let vs = s.vehicle_ids();
        assert_eq!(groups[0], vec![vs[0], vs[3], vs[6]]);
        assert_eq!(groups[1], vec![vs[1], vs[4], vs[7]]);
        assert_eq!(groups[2], vec![vs[2], vs[5]]);
    }

    #[test]
    fn contact_balanced_partition_covers_and_balances() {
        let s = crate::dieselnet_fleet(6, 42);
        let link = s.build_link_model(&Rng::new(9));
        let groups = s.shard_partition_by_contact(3, &link, 0.1);
        let mut all: Vec<NodeId> = groups.iter().flatten().copied().collect();
        all.sort_by_key(|n| n.index());
        assert_eq!(all, s.vehicle_ids());
        // LPT with 6 roughly-equal buses over 3 shards: 2 each.
        for g in &groups {
            assert!(!g.is_empty(), "no shard starves under LPT");
        }
        // Deterministic plan.
        assert_eq!(groups, s.shard_partition_by_contact(3, &link, 0.1));
    }

    #[test]
    fn bs_contact_seconds_reflect_coverage() {
        let s = crate::vanlan(2);
        let link = s.build_link_model(&Rng::new(4));
        let weights = s.bs_contact_seconds(&link, 0.1);
        assert_eq!(weights.len(), s.bs_ids().len());
        // Weights are at least the +1 floor and at most lap+1.
        for &(_, w) in &weights {
            assert!(w >= 1 && w <= s.lap.as_secs() + 1);
        }
        // Some BS must actually see traffic on a campus loop.
        assert!(weights.iter().any(|&(_, w)| w > 30), "{weights:?}");
        // Deterministic.
        assert_eq!(weights, s.bs_contact_seconds(&link, 0.1));
    }

    #[test]
    fn active_seconds_cover_contact_windows() {
        let s = crate::vanlan(1);
        let link = s.build_link_model(&Rng::new(5));
        let horizon = s.lap.as_secs();
        let active = s.active_seconds(&link, horizon, 2);
        // Sorted, disjoint.
        assert!(active.windows(2).all(|w| w[0].1 < w[1].0));
        // Every contact second falls inside an active range (activity is
        // a superset of vehicle-BS contact).
        let veh = s.vehicle_ids()[0];
        for (a, b) in s.contact_windows(veh, &link, 0.1) {
            for sec in a..b.min(horizon) {
                assert!(
                    active.iter().any(|&(lo, hi)| lo <= sec && sec < hi),
                    "contact second {sec} outside active ranges {active:?}"
                );
            }
        }
        // The out-of-range leg of the loop must leave quiet air.
        let covered: u64 = active.iter().map(|(a, b)| b - a).sum();
        assert!(covered < horizon, "some of the lap must be quiet");
    }

    #[test]
    fn vehicle_moves() {
        let s = tiny();
        let p0 = s.position(NodeId(2), SimTime::ZERO);
        let p1 = s.position(NodeId(2), SimTime::from_secs(5));
        assert!(p0.distance(p1) > 1.0);
    }
}
