//! Scenario description: the nodes, their motion, and the radio
//! environment of one testbed.

use vifi_phy::link::MobilitySource;
use vifi_phy::{NodeId, NodeKind, PhysicalLinkModel, Point, RadioParams};
use vifi_sim::{Rng, SimDuration, SimTime};

/// One node in a scenario.
#[derive(Clone, Debug)]
pub struct NodeSpec {
    /// Identifier, unique within the scenario; ids are dense from 0.
    pub id: NodeId,
    /// Vehicle, basestation, or wired host.
    pub kind: NodeKind,
    /// How it moves.
    pub mobility: MobilitySource,
    /// Human-readable name for logs and figures ("BS-3", "van-1").
    pub name: String,
}

/// A complete testbed description.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Testbed name ("VanLAN", "DieselNet-Ch1", …).
    pub name: String,
    /// All nodes. Ids must be dense `0..nodes.len()`.
    pub nodes: Vec<NodeSpec>,
    /// Radio-chain parameters.
    pub radio: RadioParams,
    /// Time one "visit cycle" takes (one shuttle lap for VanLAN, one bus
    /// loop for DieselNet) — experiments size their runs in laps so that
    /// per-day numbers can be extrapolated honestly (see DESIGN.md on time
    /// compression).
    pub lap: SimDuration,
    /// How many visit cycles the real testbed saw per day (VanLAN §2.1:
    /// "each vehicle visits the region of the BSes about ten times a day").
    pub visits_per_day: u32,
}

impl Scenario {
    /// Validate invariants (dense ids, at least one vehicle and one BS).
    pub fn validate(&self) {
        for (i, n) in self.nodes.iter().enumerate() {
            assert_eq!(n.id.index(), i, "node ids must be dense and ordered");
        }
        assert!(
            self.nodes.iter().any(|n| n.kind == NodeKind::Vehicle),
            "scenario needs a vehicle"
        );
        assert!(
            self.nodes.iter().any(|n| n.kind == NodeKind::Basestation),
            "scenario needs a basestation"
        );
    }

    /// Ids of all basestations, in id order.
    pub fn bs_ids(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Basestation)
            .map(|n| n.id)
            .collect()
    }

    /// Ids of all vehicles, in id order.
    pub fn vehicle_ids(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Vehicle)
            .map(|n| n.id)
            .collect()
    }

    /// The spec for a node id.
    pub fn node(&self, id: NodeId) -> &NodeSpec {
        &self.nodes[id.index()]
    }

    /// Construct the physical link model for this scenario.
    pub fn build_link_model(&self, rng: &Rng) -> PhysicalLinkModel {
        self.validate();
        let mut m = PhysicalLinkModel::new(self.radio.clone(), rng);
        for n in &self.nodes {
            m.add_node(n.id, n.kind, n.mobility.clone());
        }
        m
    }

    /// A copy of this scenario restricted to the given basestations (all
    /// vehicles and wired nodes kept). Node ids are re-densified; the
    /// mapping `old → new` is returned alongside. Used by the Fig. 2
    /// BS-density sweep.
    pub fn with_bs_subset(&self, keep: &[NodeId]) -> (Scenario, Vec<(NodeId, NodeId)>) {
        let mut nodes = Vec::new();
        let mut mapping = Vec::new();
        for n in &self.nodes {
            let kept = match n.kind {
                NodeKind::Basestation => keep.contains(&n.id),
                _ => true,
            };
            if kept {
                let new_id = NodeId(nodes.len() as u32);
                mapping.push((n.id, new_id));
                nodes.push(NodeSpec {
                    id: new_id,
                    kind: n.kind,
                    mobility: n.mobility.clone(),
                    name: n.name.clone(),
                });
            }
        }
        (
            Scenario {
                name: format!("{}[{} BSes]", self.name, keep.len()),
                nodes,
                radio: self.radio.clone(),
                lap: self.lap,
                visits_per_day: self.visits_per_day,
            },
            mapping,
        )
    }

    /// Position of a node at a given time (convenience for map rendering).
    pub fn position(&self, id: NodeId, t: SimTime) -> Point {
        self.node(id).mobility.position_at(t)
    }

    /// The contact windows of one vehicle over a single lap: maximal
    /// `[start, end)` second intervals during which the vehicle can hear
    /// at least one basestation with slow-fading delivery probability
    /// above `min_prob`. Windows are returned sorted and disjoint —
    /// fleet schedulers and the fleet property tests lean on both
    /// invariants. Sampled at 1 Hz against `link` (build it with
    /// [`Scenario::build_link_model`]), the same granularity as the
    /// testbeds' GPS and beacon logs.
    pub fn contact_windows(
        &self,
        vehicle: NodeId,
        link: &PhysicalLinkModel,
        min_prob: f64,
    ) -> Vec<(u64, u64)> {
        assert_eq!(
            self.node(vehicle).kind,
            NodeKind::Vehicle,
            "contact windows are defined for vehicles"
        );
        let bs = self.bs_ids();
        let lap_s = self.lap.as_secs();
        let mut windows = Vec::new();
        let mut open: Option<u64> = None;
        for sec in 0..lap_s {
            let t = SimTime::from_secs(sec);
            let covered = bs.iter().any(|&b| link.slow_prob(b, vehicle, t) > min_prob);
            match (covered, open) {
                (true, None) => open = Some(sec),
                (false, Some(start)) => {
                    windows.push((start, sec));
                    open = None;
                }
                _ => {}
            }
        }
        if let Some(start) = open {
            windows.push((start, lap_s));
        }
        windows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vifi_phy::{LinkModel, Route};

    fn tiny() -> Scenario {
        Scenario {
            name: "tiny".into(),
            nodes: vec![
                NodeSpec {
                    id: NodeId(0),
                    kind: NodeKind::Basestation,
                    mobility: MobilitySource::Fixed(Point::new(0.0, 0.0)),
                    name: "BS-0".into(),
                },
                NodeSpec {
                    id: NodeId(1),
                    kind: NodeKind::Basestation,
                    mobility: MobilitySource::Fixed(Point::new(100.0, 0.0)),
                    name: "BS-1".into(),
                },
                NodeSpec {
                    id: NodeId(2),
                    kind: NodeKind::Vehicle,
                    mobility: MobilitySource::Mobile(Route::new(
                        vec![Point::new(0.0, 50.0), Point::new(100.0, 50.0)],
                        10.0,
                        true,
                    )),
                    name: "van-0".into(),
                },
            ],
            radio: RadioParams::default(),
            lap: SimDuration::from_secs(20),
            visits_per_day: 10,
        }
    }

    #[test]
    fn id_queries() {
        let s = tiny();
        s.validate();
        assert_eq!(s.bs_ids(), vec![NodeId(0), NodeId(1)]);
        assert_eq!(s.vehicle_ids(), vec![NodeId(2)]);
        assert_eq!(s.node(NodeId(0)).name, "BS-0");
    }

    #[test]
    fn builds_link_model() {
        let s = tiny();
        let m = s.build_link_model(&Rng::new(1));
        assert_eq!(m.nodes().len(), 3);
        assert_eq!(m.kind(NodeId(2)), NodeKind::Vehicle);
    }

    #[test]
    fn bs_subset_redensifies_ids() {
        let s = tiny();
        let (sub, mapping) = s.with_bs_subset(&[NodeId(1)]);
        sub.validate();
        assert_eq!(sub.nodes.len(), 2);
        assert_eq!(sub.bs_ids(), vec![NodeId(0)]);
        assert_eq!(sub.node(NodeId(0)).name, "BS-1");
        assert_eq!(sub.vehicle_ids(), vec![NodeId(1)]);
        assert!(mapping.contains(&(NodeId(1), NodeId(0))));
        assert!(mapping.contains(&(NodeId(2), NodeId(1))));
    }

    #[test]
    #[should_panic(expected = "needs a basestation")]
    fn subset_with_no_bs_is_invalid() {
        let s = tiny();
        let (sub, _) = s.with_bs_subset(&[]);
        sub.validate();
    }

    #[test]
    fn vehicle_moves() {
        let s = tiny();
        let p0 = s.position(NodeId(2), SimTime::ZERO);
        let p1 = s.position(NodeId(2), SimTime::from_secs(5));
        assert!(p0.distance(p1) > 1.0);
    }
}
