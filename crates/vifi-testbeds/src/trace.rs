//! Beacon traces: the DieselNet measurement artifact and the §5.1
//! trace-driven simulation pipeline.
//!
//! The buses logged, for every second and every BS, how many beacons they
//! heard (the profiling channel was pinned so beacons were never missed to
//! scanning). The paper turns those logs into a simulation environment:
//!
//! > *"The beacon loss ratio from a BS to the vehicle in each one-second
//! > interval is used as the packet loss rate from that BS to the vehicle
//! > and from the vehicle to the BS. … For inter-BS loss rates, we assume
//! > that BS pairs that are never simultaneously within the range of a bus
//! > cannot reach one another. For other pairs, we assign loss ratios
//! > between 0 and 1 uniformly at random."* (§5.1)
//!
//! [`BeaconTrace`] is the log; [`generate_beacon_trace`] produces one from
//! a synthetic scenario (our substitute for the unavailable
//! traces.cs.umass.edu archive); [`TraceSimSetup`] applies the quoted rules
//! to produce a [`TraceLinkModel`]. Traces serialize to JSON (for reuse
//! across runs) and to CSV (for external plotting).

use std::io::{BufRead, Write};

use serde::{Deserialize, Serialize};
use vifi_phy::link::{LossSeries, TraceLinkModel};
use vifi_phy::{LinkModel, NodeId, NodeKind};
use vifi_sim::{Rng, SimDuration, SimTime};

use crate::scenario::Scenario;

/// One (second, BS) cell of a beacon log.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BeaconRecord {
    /// Second index since trace start.
    pub sec: u64,
    /// BS index within the trace's `bs_count`.
    pub bs: u32,
    /// Beacons heard in this second.
    pub heard: u32,
    /// Beacons that must have been sent in this second.
    pub expected: u32,
    /// Mean RSSI of heard beacons, dBm (0.0 when none heard).
    pub mean_rssi_dbm: f64,
}

/// A beacon log for one vehicle over one channel.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BeaconTrace {
    /// Trace label ("DieselNet-Ch1", "VanLAN-validation", …).
    pub name: String,
    /// Number of BSes profiled.
    pub bs_count: u32,
    /// Trace duration in whole seconds.
    pub seconds: u64,
    /// Beacons each BS sends per second.
    pub beacons_per_sec: u32,
    /// Sparse records: seconds in which a BS was heard at least once.
    /// (Silent seconds are implicit — like the real logs, nothing is
    /// recorded when nothing is heard.)
    pub records: Vec<BeaconRecord>,
}

impl BeaconTrace {
    /// Per-second delivery-ratio series for one BS, dense over the whole
    /// trace (unheard seconds are 0).
    pub fn delivery_series(&self, bs: u32) -> Vec<f64> {
        let mut out = vec![0.0; self.seconds as usize];
        for r in self.records.iter().filter(|r| r.bs == bs) {
            if (r.sec as usize) < out.len() && r.expected > 0 {
                out[r.sec as usize] = r.heard as f64 / r.expected as f64;
            }
        }
        out
    }

    /// For each second, how many BSes had delivery ratio ≥ `min_ratio`
    /// (with `min_ratio == 0.0` meaning "at least one beacon heard").
    /// This is the Fig. 5 estimator.
    pub fn visible_per_second(&self, min_ratio: f64) -> Vec<u32> {
        let mut out = vec![0u32; self.seconds as usize];
        for r in &self.records {
            if (r.sec as usize) >= out.len() || r.expected == 0 {
                continue;
            }
            let ratio = r.heard as f64 / r.expected as f64;
            let visible = if min_ratio <= 0.0 {
                r.heard >= 1
            } else {
                ratio >= min_ratio
            };
            if visible {
                out[r.sec as usize] += 1;
            }
        }
        out
    }

    /// True if BSes `a` and `b` were ever heard in the same second — the
    /// §5.1 reachability criterion for inter-BS links.
    pub fn co_visible(&self, a: u32, b: u32) -> bool {
        let mut secs_a: Vec<u64> = self
            .records
            .iter()
            .filter(|r| r.bs == a && r.heard > 0)
            .map(|r| r.sec)
            .collect();
        secs_a.sort_unstable();
        self.records
            .iter()
            .any(|r| r.bs == b && r.heard > 0 && secs_a.binary_search(&r.sec).is_ok())
    }

    /// Total beacons heard across the trace.
    pub fn total_heard(&self) -> u64 {
        self.records.iter().map(|r| r.heard as u64).sum()
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serialization cannot fail")
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Write as CSV (`sec,bs,heard,expected,mean_rssi_dbm`).
    pub fn write_csv<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(
            w,
            "# name={} bs_count={} seconds={} beacons_per_sec={}",
            self.name, self.bs_count, self.seconds, self.beacons_per_sec
        )?;
        writeln!(w, "sec,bs,heard,expected,mean_rssi_dbm")?;
        for r in &self.records {
            writeln!(
                w,
                "{},{},{},{},{:.1}",
                r.sec, r.bs, r.heard, r.expected, r.mean_rssi_dbm
            )?;
        }
        Ok(())
    }

    /// Parse the CSV form produced by [`write_csv`](Self::write_csv).
    pub fn read_csv<R: BufRead>(r: R) -> Result<Self, String> {
        let mut name = String::from("csv-trace");
        let mut bs_count = 0u32;
        let mut seconds = 0u64;
        let mut beacons_per_sec = 0u32;
        let mut records = Vec::new();
        for (lineno, line) in r.lines().enumerate() {
            let line = line.map_err(|e| e.to_string())?;
            let line = line.trim();
            if line.is_empty() || line == "sec,bs,heard,expected,mean_rssi_dbm" {
                continue;
            }
            if let Some(meta) = line.strip_prefix('#') {
                for kv in meta.split_whitespace() {
                    let Some((k, v)) = kv.split_once('=') else {
                        continue;
                    };
                    match k {
                        "name" => name = v.to_string(),
                        "bs_count" => bs_count = v.parse().map_err(|e| format!("{e}"))?,
                        "seconds" => seconds = v.parse().map_err(|e| format!("{e}"))?,
                        "beacons_per_sec" => {
                            beacons_per_sec = v.parse().map_err(|e| format!("{e}"))?
                        }
                        _ => {}
                    }
                }
                continue;
            }
            let mut it = line.split(',');
            let mut next = |what: &str| {
                it.next()
                    .ok_or_else(|| format!("line {}: missing {what}", lineno + 1))
            };
            records.push(BeaconRecord {
                sec: next("sec")?.parse().map_err(|e| format!("{e}"))?,
                bs: next("bs")?.parse().map_err(|e| format!("{e}"))?,
                heard: next("heard")?.parse().map_err(|e| format!("{e}"))?,
                expected: next("expected")?.parse().map_err(|e| format!("{e}"))?,
                mean_rssi_dbm: next("rssi")?.parse().map_err(|e| format!("{e}"))?,
            });
        }
        Ok(BeaconTrace {
            name,
            bs_count,
            seconds,
            beacons_per_sec,
            records,
        })
    }
}

/// Generate a synthetic beacon trace by sampling a scenario's physical
/// channel: each BS beacons `beacons_per_sec` times a second; the chosen
/// vehicle logs per-second hear-counts and mean RSSI, exactly the
/// DieselNet methodology (§2.2).
pub fn generate_beacon_trace(
    scenario: &Scenario,
    vehicle: NodeId,
    duration: SimDuration,
    beacons_per_sec: u32,
    rng: &Rng,
) -> BeaconTrace {
    assert!(beacons_per_sec > 0);
    let mut link = scenario.build_link_model(rng);
    let bs_ids = scenario.bs_ids();
    let seconds = duration.as_secs();
    BeaconTrace {
        name: scenario.name.clone(),
        bs_count: bs_ids.len() as u32,
        seconds,
        beacons_per_sec,
        records: sample_vehicle_records(&mut link, &bs_ids, vehicle, seconds, beacons_per_sec),
    }
}

/// The §2.2 logging loop shared by the single-vehicle and fleet trace
/// generators: per second and per BS, count beacons the vehicle heard and
/// average their RSSI; silent seconds produce no record.
fn sample_vehicle_records(
    link: &mut vifi_phy::PhysicalLinkModel,
    bs_ids: &[NodeId],
    vehicle: NodeId,
    seconds: u64,
    beacons_per_sec: u32,
) -> Vec<BeaconRecord> {
    let gap = SimDuration::from_micros(1_000_000 / beacons_per_sec as u64);
    let mut records = Vec::new();
    for sec in 0..seconds {
        for (bi, &bs) in bs_ids.iter().enumerate() {
            let mut heard = 0u32;
            let mut rssi_sum = 0.0;
            for k in 0..beacons_per_sec {
                let t = SimTime::from_secs(sec) + gap * k as u64;
                if link.sample_delivery(bs, vehicle, t) {
                    heard += 1;
                    rssi_sum += link.rssi_dbm(bs, vehicle, t).unwrap_or(-95.0);
                }
            }
            if heard > 0 {
                records.push(BeaconRecord {
                    sec,
                    bs: bi as u32,
                    heard,
                    expected: beacons_per_sec,
                    mean_rssi_dbm: rssi_sum / heard as f64,
                });
            }
        }
    }
    records
}

/// Generate one beacon trace per vehicle of a (fleet) scenario, all
/// sampled against a single shared channel build — so the per-bus logs are
/// mutually consistent the way a real fleet's logs are (the same shadowing
/// field, the same AP placements, one RNG lineage). The traces come back
/// in [`Scenario::vehicle_ids`] order, named `<scenario>/<vehicle>`.
///
/// This is the fleet face of the §5.1 pipeline: the paper had one
/// instrumented bus, so [`TraceSimSetup`] deliberately models one vehicle
/// per trace; a fleet study replays each returned trace through its own
/// `TraceSimSetup` (or drives the scenario directly in deployment mode).
pub fn generate_fleet_beacon_traces(
    scenario: &Scenario,
    duration: SimDuration,
    beacons_per_sec: u32,
    rng: &Rng,
) -> Vec<BeaconTrace> {
    assert!(beacons_per_sec > 0);
    let mut link = scenario.build_link_model(rng);
    let bs_ids = scenario.bs_ids();
    let seconds = duration.as_secs();
    scenario
        .vehicle_ids()
        .iter()
        .map(|&vehicle| BeaconTrace {
            name: format!("{}/{}", scenario.name, scenario.node(vehicle).name),
            bs_count: bs_ids.len() as u32,
            seconds,
            beacons_per_sec,
            records: sample_vehicle_records(&mut link, &bs_ids, vehicle, seconds, beacons_per_sec),
        })
        .collect()
}

/// The §5.1 trace-driven simulation environment built from a beacon trace.
pub struct TraceSimSetup {
    /// The assembled link model: vehicle ↔ BS series from the trace
    /// (symmetric), BS ↔ BS constant series per the co-visibility rule.
    pub link: TraceLinkModel,
    /// The vehicle's node id (0).
    pub vehicle: NodeId,
    /// BS node ids (1..=bs_count), index-aligned with the trace's `bs`.
    pub bs_ids: Vec<NodeId>,
}

impl TraceSimSetup {
    /// Apply the paper's rules to a trace. `rng` drives the uniform
    /// inter-BS loss draw.
    pub fn from_trace(trace: &BeaconTrace, rng: &Rng) -> Self {
        let mut link = TraceLinkModel::new(rng);
        let vehicle = NodeId(0);
        link.add_node(vehicle, NodeKind::Vehicle);
        let bs_ids: Vec<NodeId> = (0..trace.bs_count)
            .map(|i| {
                let id = NodeId(1 + i);
                link.add_node(id, NodeKind::Basestation);
                id
            })
            .collect();
        // Vehicle↔BS: per-second beacon delivery ratio, both directions.
        for (bi, &bs) in bs_ids.iter().enumerate() {
            let series = LossSeries::new(trace.delivery_series(bi as u32));
            link.set_symmetric(vehicle, bs, series);
        }
        // BS↔BS: unreachable unless ever co-visible; else constant loss
        // drawn uniformly (delivery = 1 − loss).
        let mut draw = rng.fork_named("inter-bs-loss");
        let secs = trace.seconds as usize;
        for i in 0..bs_ids.len() {
            for j in i + 1..bs_ids.len() {
                if trace.co_visible(i as u32, j as u32) {
                    let delivery = 1.0 - draw.next_f64();
                    let series = LossSeries::new(vec![delivery; secs]);
                    link.set_symmetric(bs_ids[i], bs_ids[j], series);
                }
            }
        }
        TraceSimSetup {
            link,
            vehicle,
            bs_ids,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dieselnet::dieselnet_ch1;
    use crate::vanlan::vanlan;

    fn small_trace() -> BeaconTrace {
        let s = vanlan(1);
        let veh = s.vehicle_ids()[0];
        generate_beacon_trace(&s, veh, SimDuration::from_secs(120), 10, &Rng::new(11))
    }

    #[test]
    fn generated_trace_has_sane_shape() {
        let t = small_trace();
        assert_eq!(t.bs_count, 11);
        assert_eq!(t.seconds, 120);
        assert!(t.total_heard() > 100, "heard {}", t.total_heard());
        for r in &t.records {
            assert!(r.heard >= 1 && r.heard <= r.expected);
            assert!(r.sec < 120);
            assert!(r.bs < 11);
            assert!(r.mean_rssi_dbm < -20.0, "rssi {}", r.mean_rssi_dbm);
        }
    }

    #[test]
    fn delivery_series_dense_and_bounded() {
        let t = small_trace();
        for bs in 0..t.bs_count {
            let s = t.delivery_series(bs);
            assert_eq!(s.len(), 120);
            assert!(s.iter().all(|p| (0.0..=1.0).contains(p)));
        }
    }

    #[test]
    fn visibility_counts_consistent() {
        let t = small_trace();
        let any = t.visible_per_second(0.0);
        let half = t.visible_per_second(0.5);
        assert_eq!(any.len(), 120);
        for (a, h) in any.iter().zip(half.iter()) {
            assert!(h <= a, "50% visibility cannot exceed any-beacon visibility");
            assert!(*a <= t.bs_count);
        }
        // The van drives through campus within the first two minutes, so
        // someone must be visible at some point.
        assert!(any.iter().any(|&c| c >= 1));
    }

    #[test]
    fn json_roundtrip() {
        let t = small_trace();
        let j = t.to_json();
        let back = BeaconTrace::from_json(&j).unwrap();
        assert_eq!(back.records, t.records);
        assert_eq!(back.name, t.name);
        assert_eq!(back.seconds, t.seconds);
    }

    #[test]
    fn csv_roundtrip() {
        let t = small_trace();
        let mut buf = Vec::new();
        t.write_csv(&mut buf).unwrap();
        let back = BeaconTrace::read_csv(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(back.bs_count, t.bs_count);
        assert_eq!(back.seconds, t.seconds);
        assert_eq!(back.beacons_per_sec, t.beacons_per_sec);
        assert_eq!(back.records.len(), t.records.len());
        for (a, b) in back.records.iter().zip(t.records.iter()) {
            assert_eq!(a.sec, b.sec);
            assert_eq!(a.bs, b.bs);
            assert_eq!(a.heard, b.heard);
            assert!((a.mean_rssi_dbm - b.mean_rssi_dbm).abs() < 0.1);
        }
    }

    #[test]
    fn trace_sim_setup_applies_section_5_1_rules() {
        let s = dieselnet_ch1();
        let veh = s.vehicle_ids()[0];
        let trace = generate_beacon_trace(&s, veh, SimDuration::from_secs(200), 10, &Rng::new(21));
        let setup = TraceSimSetup::from_trace(&trace, &Rng::new(22));
        assert_eq!(setup.bs_ids.len(), 10);
        // Vehicle↔BS series must mirror the trace (spot-check one BS).
        let mut link = setup.link;
        let bs3 = setup.bs_ids[3];
        let series = trace.delivery_series(3);
        for (sec, &p) in series.iter().enumerate().take(50) {
            let t = SimTime::from_secs(sec as u64) + SimDuration::from_millis(500);
            // The fading layer may attenuate below the trace ratio, but
            // never above it, and dead seconds stay dead.
            let up = link.delivery_prob(setup.vehicle, bs3, t);
            let down = link.delivery_prob(bs3, setup.vehicle, t);
            assert!(up <= p + 1e-12, "upstream {up} vs trace {p}");
            assert!(down <= p + 1e-12, "downstream {down} vs trace {p}");
            if p == 0.0 {
                assert_eq!(up, 0.0);
                assert_eq!(down, 0.0);
            }
        }
    }

    #[test]
    fn never_covisible_pairs_unreachable() {
        // Hand-build a trace where BS 0 and BS 1 are never co-visible.
        let trace = BeaconTrace {
            name: "hand".into(),
            bs_count: 2,
            seconds: 10,
            beacons_per_sec: 10,
            records: vec![
                BeaconRecord {
                    sec: 1,
                    bs: 0,
                    heard: 5,
                    expected: 10,
                    mean_rssi_dbm: -70.0,
                },
                BeaconRecord {
                    sec: 5,
                    bs: 1,
                    heard: 5,
                    expected: 10,
                    mean_rssi_dbm: -70.0,
                },
            ],
        };
        assert!(!trace.co_visible(0, 1));
        let setup = TraceSimSetup::from_trace(&trace, &Rng::new(1));
        let mut link = setup.link;
        let t = SimTime::from_secs(1);
        assert_eq!(
            link.delivery_prob(setup.bs_ids[0], setup.bs_ids[1], t),
            0.0,
            "never-co-visible BSes cannot reach one another"
        );
    }

    #[test]
    fn covisible_pairs_get_constant_series() {
        let trace = BeaconTrace {
            name: "hand".into(),
            bs_count: 2,
            seconds: 10,
            beacons_per_sec: 10,
            records: vec![
                BeaconRecord {
                    sec: 2,
                    bs: 0,
                    heard: 5,
                    expected: 10,
                    mean_rssi_dbm: -70.0,
                },
                BeaconRecord {
                    sec: 2,
                    bs: 1,
                    heard: 3,
                    expected: 10,
                    mean_rssi_dbm: -75.0,
                },
            ],
        };
        assert!(trace.co_visible(0, 1));
        let setup = TraceSimSetup::from_trace(&trace, &Rng::new(3));
        let mut link = setup.link;
        let p1 = link.delivery_prob(setup.bs_ids[0], setup.bs_ids[1], SimTime::from_secs(0));
        assert!(p1 > 0.0 && p1 <= 1.0);
        // The underlying series is constant and symmetric (fades modulate
        // per call, so compare the quality hints, which bypass fading).
        let q1 = link.quality_hint(setup.bs_ids[0], setup.bs_ids[1], SimTime::from_secs(0));
        let q2 = link.quality_hint(setup.bs_ids[0], setup.bs_ids[1], SimTime::from_secs(9));
        let q3 = link.quality_hint(setup.bs_ids[1], setup.bs_ids[0], SimTime::from_secs(0));
        assert_eq!(q1, q2, "inter-BS series is constant over the trace");
        assert_eq!(q1, q3, "inter-BS series is symmetric");
    }

    #[test]
    fn fleet_traces_one_per_bus_and_deterministic() {
        let s = crate::dieselnet::dieselnet_fleet(3, 5);
        let traces =
            generate_fleet_beacon_traces(&s, SimDuration::from_secs(90), 10, &Rng::new(13));
        assert_eq!(traces.len(), 3);
        for (i, t) in traces.iter().enumerate() {
            assert_eq!(t.bs_count, 14);
            assert_eq!(t.seconds, 90);
            assert!(t.name.ends_with(&format!("bus-{i}")), "{}", t.name);
        }
        // Distinct schedules ⇒ distinct logs; same inputs ⇒ same logs.
        assert_ne!(traces[0].records, traces[1].records);
        let again = generate_fleet_beacon_traces(&s, SimDuration::from_secs(90), 10, &Rng::new(13));
        for (a, b) in traces.iter().zip(again.iter()) {
            assert_eq!(a.records, b.records);
        }
        // Each per-bus trace feeds the single-vehicle §5.1 pipeline as-is.
        let setup = TraceSimSetup::from_trace(&traces[0], &Rng::new(14));
        assert_eq!(setup.bs_ids.len(), 14);
    }

    #[test]
    fn trace_determinism() {
        let s = vanlan(1);
        let veh = s.vehicle_ids()[0];
        let a = generate_beacon_trace(&s, veh, SimDuration::from_secs(60), 10, &Rng::new(5));
        let b = generate_beacon_trace(&s, veh, SimDuration::from_secs(60), 10, &Rng::new(5));
        assert_eq!(a.records, b.records);
    }
}
