//! The synthetic DieselNet environment.
//!
//! §2.2: buses in Amherst, MA; one bus logged beacons from town BSes for
//! three days per channel in December 2007. Analysis is limited to BSes in
//! the town core visible on all three days: **10 BSes on Channel 1, 14 on
//! Channel 6**, about half belonging to the town mesh (regularly spaced)
//! and half to shops (clustered along the street).
//!
//! The synthetic layouts put mesh nodes at regular intervals along a main
//! street and shop APs scattered just off it; the bus runs the street and
//! then loops out of range through residential areas. Coverage is sparser
//! and more linear than VanLAN — the property that shows up in the Fig. 5
//! visibility CDFs.
//!
//! DieselNet is used **only** through its beacon traces (the paper could
//! not modify those BSes), so the main consumer of these scenarios is
//! [`crate::trace::generate_beacon_trace`] followed by the §5.1
//! trace-driven pipeline.

use vifi_phy::link::MobilitySource;
use vifi_phy::{kmh_to_ms, NodeId, NodeKind, Point, RadioParams, Route};
use vifi_sim::{Rng, SimDuration};

use crate::scenario::{NodeSpec, Scenario};

/// Channel 1: 5 town-mesh BSes (regular) + 5 shop BSes (clustered) = 10.
pub const CH1_POSITIONS: [(f64, f64); 10] = [
    // Town mesh, ~300 m spacing along Main St (y ≈ 0).
    (150.0, 25.0),
    (450.0, -20.0),
    (750.0, 25.0),
    (1050.0, -20.0),
    (1350.0, 25.0),
    // Shops.
    (250.0, -35.0),
    (620.0, 30.0),
    (820.0, -30.0),
    (1120.0, 35.0),
    (1260.0, -25.0),
];

/// Channel 6: 7 mesh + 7 shop BSes = 14.
pub const CH6_POSITIONS: [(f64, f64); 14] = [
    // Town mesh, ~200 m spacing.
    (100.0, 25.0),
    (300.0, -20.0),
    (500.0, 25.0),
    (700.0, -20.0),
    (900.0, 25.0),
    (1100.0, -20.0),
    (1300.0, 25.0),
    // Shops.
    (200.0, -35.0),
    (380.0, 30.0),
    (560.0, -30.0),
    (760.0, 35.0),
    (980.0, -25.0),
    (1180.0, 30.0),
    (1420.0, -30.0),
];

/// The bus loop: the full main street, then an out-of-range residential
/// loop back. Closed route.
fn bus_waypoints() -> Vec<Point> {
    [
        (0.0, 0.0),
        (1500.0, 0.0),
        // Residential loop, beyond radio range of every street AP. The
        // paper restricts its analysis to the town core (§2.2), so the
        // out-of-town leg is kept short.
        (1500.0, 560.0),
        (-550.0, 560.0),
        (-550.0, 0.0),
    ]
    .iter()
    .map(|&(x, y)| Point::new(x, y))
    .collect()
}

/// One bus's synthesized schedule: where on the route it starts, how fast
/// it drives, and in which direction it runs the street.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BusSchedule {
    /// Start offset along the route, meters.
    pub start_offset_m: f64,
    /// Cruising speed, m/s.
    pub speed_ms: f64,
    /// Odd buses run the street outbound→inbound (reversed waypoints).
    pub reversed: bool,
}

/// Synthesize a fleet of bus schedules, deterministic per `seed`. The
/// schedule model mirrors what the DieselNet beacon logs show (the same
/// model [`crate::trace`] replays): buses on a shared corridor, staggered
/// headways with a little jitter, alternating directions, and per-bus
/// speed spread (25–35 km/h around the 30 km/h base).
pub fn bus_schedules(buses: u32, seed: u64, route_len_m: f64) -> Vec<BusSchedule> {
    assert!(buses >= 1, "need at least one bus");
    let mut rng = Rng::new(seed).fork_named("dieselnet-fleet");
    (0..buses)
        .map(|b| {
            // Even headway plus up to ±20% of one headway of jitter, so
            // fleets are spread out but not metronomic.
            let headway = route_len_m / buses as f64;
            let jitter = (rng.next_f64() - 0.5) * 0.4 * headway;
            BusSchedule {
                start_offset_m: (b as f64 * headway + jitter).rem_euclid(route_len_m),
                speed_ms: kmh_to_ms(rng.range_f64(25.0, 35.0)),
                reversed: b % 2 == 1,
            }
        })
        .collect()
}

fn dieselnet(name: &str, positions: &[(f64, f64)], schedules: &[BusSchedule]) -> Scenario {
    assert!(!schedules.is_empty(), "need at least one bus");
    let mut nodes = Vec::new();
    for (i, &(x, y)) in positions.iter().enumerate() {
        nodes.push(NodeSpec {
            id: NodeId(i as u32),
            kind: NodeKind::Basestation,
            mobility: MobilitySource::Fixed(Point::new(x, y)),
            name: format!("AP-{i}"),
        });
    }
    // Buses are slower than the VanLAN shuttles and their consumer APs are
    // a little weaker than campus infrastructure.
    let radio = RadioParams {
        bs_tx_power_dbm: 20.0,
        pl_exponent: 2.9,
        shadow_sigma_db: 5.5,
        ..RadioParams::default()
    };
    // The scenario lap is the *slowest* bus's loop time so one lap of the
    // scenario sees every bus complete at least one visit cycle.
    let mut lap_s: f64 = 0.0;
    for (b, sched) in schedules.iter().enumerate() {
        let mut waypoints = bus_waypoints();
        if sched.reversed {
            waypoints.reverse();
        }
        let route =
            Route::new(waypoints, sched.speed_ms, true).with_start_offset(sched.start_offset_m);
        lap_s = lap_s.max(route.lap_time_s());
        nodes.push(NodeSpec {
            id: NodeId((positions.len() + b) as u32),
            kind: NodeKind::Vehicle,
            mobility: MobilitySource::Mobile(route),
            name: format!("bus-{b}"),
        });
    }
    Scenario {
        name: name.into(),
        nodes,
        radio,
        lap: SimDuration::from_secs_f64(lap_s),
        visits_per_day: 12,
    }
}

/// The schedule the original single-bus scenarios always used: one bus at
/// 30 km/h from the route origin, street inbound.
fn single_bus() -> Vec<BusSchedule> {
    vec![BusSchedule {
        start_offset_m: 0.0,
        speed_ms: kmh_to_ms(30.0),
        reversed: false,
    }]
}

/// DieselNet on Channel 1 (10 BSes, one bus — the paper's logging setup).
pub fn dieselnet_ch1() -> Scenario {
    dieselnet("DieselNet-Ch1", &CH1_POSITIONS, &single_bus())
}

/// DieselNet on Channel 6 (14 BSes, one bus).
pub fn dieselnet_ch6() -> Scenario {
    dieselnet("DieselNet-Ch6", &CH6_POSITIONS, &single_bus())
}

/// A fleet-scale DieselNet: `buses` buses with schedules synthesized by
/// [`bus_schedules`] (deterministic per `seed`) over the denser Channel 6
/// layout — the whole-fleet analysis the paper's single instrumented bus
/// could only sample.
///
/// Remaining fleet-size limits: the §5.1 *trace-driven* pipeline
/// ([`crate::trace::TraceSimSetup`]) still models exactly one vehicle per
/// trace (`NodeId(0)`), matching the measurement artifact — fleet runs
/// against traces take one [`crate::trace::BeaconTrace`] per bus (see
/// [`crate::trace::generate_fleet_beacon_traces`]) rather than one joint
/// multi-bus trace. Deployment mode has no such limit.
pub fn dieselnet_fleet(buses: u32, seed: u64) -> Scenario {
    let route_len = Route::new(bus_waypoints(), kmh_to_ms(30.0), true).length();
    let schedules = bus_schedules(buses, seed, route_len);
    let mut s = dieselnet("DieselNet-Fleet", &CH6_POSITIONS, &schedules);
    s.name = format!("DieselNet-Fleet-{buses}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use vifi_sim::{Rng, SimTime};

    #[test]
    fn bs_counts_match_paper() {
        assert_eq!(dieselnet_ch1().bs_ids().len(), 10);
        assert_eq!(dieselnet_ch6().bs_ids().len(), 14);
    }

    #[test]
    fn scenarios_validate() {
        dieselnet_ch1().validate();
        dieselnet_ch6().validate();
    }

    #[test]
    fn ch6_is_denser_than_ch1() {
        // Along the street, the ch6 bus should see at least as many BSes
        // on average as the ch1 bus.
        let count_visible = |s: &Scenario| {
            let veh = s.vehicle_ids()[0];
            let link = s.build_link_model(&Rng::new(5));
            let mut total = 0usize;
            let mut secs = 0usize;
            for sec in 0..180 {
                // First 180 s ≈ the street portion at 8.3 m/s.
                let t = SimTime::from_secs(sec);
                let v = s
                    .bs_ids()
                    .iter()
                    .filter(|&&bs| link.slow_prob(bs, veh, t) > 0.1)
                    .count();
                total += v;
                secs += 1;
            }
            total as f64 / secs as f64
        };
        let c1 = count_visible(&dieselnet_ch1());
        let c6 = count_visible(&dieselnet_ch6());
        assert!(c6 > c1, "ch6 {c6} vs ch1 {c1}");
        assert!(c1 >= 1.0, "ch1 average visibility {c1}");
    }

    #[test]
    fn bus_leaves_coverage_on_residential_loop() {
        let s = dieselnet_ch1();
        let veh = s.vehicle_ids()[0];
        let link = s.build_link_model(&Rng::new(6));
        // Sample the far side of the loop (roughly 60% around).
        let t = SimTime::from_secs_f64(s.lap.as_secs_f64() * 0.6);
        let visible = s
            .bs_ids()
            .iter()
            .filter(|&&bs| link.slow_prob(bs, veh, t) > 0.0)
            .count();
        assert_eq!(visible, 0, "residential loop must be out of range");
    }

    #[test]
    fn fleet_is_deterministic_per_seed_and_distinct_across_seeds() {
        let a = dieselnet_fleet(6, 42);
        let b = dieselnet_fleet(6, 42);
        let c = dieselnet_fleet(6, 43);
        assert_eq!(a.vehicle_ids().len(), 6);
        assert_eq!(a.bs_ids().len(), 14);
        let mut same = true;
        let mut differs_from_c = false;
        for &v in &a.vehicle_ids() {
            for sec in [0u64, 50, 200] {
                let t = SimTime::from_secs(sec);
                same &= a.position(v, t) == b.position(v, t);
                differs_from_c |= a.position(v, t) != c.position(v, t);
            }
        }
        assert!(same, "same seed, same fleet");
        assert!(differs_from_c, "different seed, different schedules");
    }

    #[test]
    fn fleet_buses_have_distinct_routes() {
        let s = dieselnet_fleet(8, 7);
        s.validate();
        let vs = s.vehicle_ids();
        for i in 0..vs.len() {
            for j in i + 1..vs.len() {
                let distinct = [0u64, 30, 90, 150].iter().any(|&sec| {
                    let t = SimTime::from_secs(sec);
                    s.position(vs[i], t).distance(s.position(vs[j], t)) > 1.0
                });
                assert!(distinct, "buses {i} and {j} share a trajectory");
            }
        }
    }

    #[test]
    fn fleet_lap_covers_slowest_bus() {
        let s = dieselnet_fleet(4, 9);
        let slowest = bus_schedules(4, 9, 5220.0)
            .iter()
            .map(|b| b.speed_ms)
            .fold(f64::INFINITY, f64::min);
        // Lap must be at least route-length / slowest-speed (route ≈ 5.2 km).
        assert!(s.lap.as_secs_f64() >= 5000.0 / slowest);
    }

    #[test]
    fn coverage_is_sparser_than_vanlan() {
        // DieselNet's linear street yields fewer simultaneously visible
        // BSes than VanLAN's clustered campus at its densest.
        let s = dieselnet_ch1();
        let veh = s.vehicle_ids()[0];
        let link = s.build_link_model(&Rng::new(7));
        let mut max_visible = 0usize;
        for sec in 0..s.lap.as_secs() {
            let t = SimTime::from_secs(sec);
            let v = s
                .bs_ids()
                .iter()
                .filter(|&&bs| link.slow_prob(bs, veh, t) > 0.1)
                .count();
            max_visible = max_visible.max(v);
        }
        assert!(max_visible <= 8, "ch1 max visible {max_visible}");
        assert!(max_visible >= 2, "ch1 max visible {max_visible}");
    }
}
