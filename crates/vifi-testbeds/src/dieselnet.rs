//! The synthetic DieselNet environment.
//!
//! §2.2: buses in Amherst, MA; one bus logged beacons from town BSes for
//! three days per channel in December 2007. Analysis is limited to BSes in
//! the town core visible on all three days: **10 BSes on Channel 1, 14 on
//! Channel 6**, about half belonging to the town mesh (regularly spaced)
//! and half to shops (clustered along the street).
//!
//! The synthetic layouts put mesh nodes at regular intervals along a main
//! street and shop APs scattered just off it; the bus runs the street and
//! then loops out of range through residential areas. Coverage is sparser
//! and more linear than VanLAN — the property that shows up in the Fig. 5
//! visibility CDFs.
//!
//! DieselNet is used **only** through its beacon traces (the paper could
//! not modify those BSes), so the main consumer of these scenarios is
//! [`crate::trace::generate_beacon_trace`] followed by the §5.1
//! trace-driven pipeline.

use vifi_phy::link::MobilitySource;
use vifi_phy::{kmh_to_ms, NodeId, NodeKind, Point, RadioParams, Route};
use vifi_sim::SimDuration;

use crate::scenario::{NodeSpec, Scenario};

/// Channel 1: 5 town-mesh BSes (regular) + 5 shop BSes (clustered) = 10.
pub const CH1_POSITIONS: [(f64, f64); 10] = [
    // Town mesh, ~300 m spacing along Main St (y ≈ 0).
    (150.0, 25.0),
    (450.0, -20.0),
    (750.0, 25.0),
    (1050.0, -20.0),
    (1350.0, 25.0),
    // Shops.
    (250.0, -35.0),
    (620.0, 30.0),
    (820.0, -30.0),
    (1120.0, 35.0),
    (1260.0, -25.0),
];

/// Channel 6: 7 mesh + 7 shop BSes = 14.
pub const CH6_POSITIONS: [(f64, f64); 14] = [
    // Town mesh, ~200 m spacing.
    (100.0, 25.0),
    (300.0, -20.0),
    (500.0, 25.0),
    (700.0, -20.0),
    (900.0, 25.0),
    (1100.0, -20.0),
    (1300.0, 25.0),
    // Shops.
    (200.0, -35.0),
    (380.0, 30.0),
    (560.0, -30.0),
    (760.0, 35.0),
    (980.0, -25.0),
    (1180.0, 30.0),
    (1420.0, -30.0),
];

/// The bus loop: the full main street, then an out-of-range residential
/// loop back. Closed route.
fn bus_waypoints() -> Vec<Point> {
    [
        (0.0, 0.0),
        (1500.0, 0.0),
        // Residential loop, beyond radio range of every street AP. The
        // paper restricts its analysis to the town core (§2.2), so the
        // out-of-town leg is kept short.
        (1500.0, 560.0),
        (-550.0, 560.0),
        (-550.0, 0.0),
    ]
    .iter()
    .map(|&(x, y)| Point::new(x, y))
    .collect()
}

fn dieselnet(name: &str, positions: &[(f64, f64)]) -> Scenario {
    let mut nodes = Vec::new();
    for (i, &(x, y)) in positions.iter().enumerate() {
        nodes.push(NodeSpec {
            id: NodeId(i as u32),
            kind: NodeKind::Basestation,
            mobility: MobilitySource::Fixed(Point::new(x, y)),
            name: format!("AP-{i}"),
        });
    }
    // Buses are slower than the VanLAN shuttles and their consumer APs are
    // a little weaker than campus infrastructure.
    let radio = RadioParams {
        bs_tx_power_dbm: 20.0,
        pl_exponent: 2.9,
        shadow_sigma_db: 5.5,
        ..RadioParams::default()
    };
    let route = Route::new(bus_waypoints(), kmh_to_ms(30.0), true);
    let lap = SimDuration::from_secs_f64(route.lap_time_s());
    nodes.push(NodeSpec {
        id: NodeId(positions.len() as u32),
        kind: NodeKind::Vehicle,
        mobility: MobilitySource::Mobile(route),
        name: "bus-0".into(),
    });
    Scenario {
        name: name.into(),
        nodes,
        radio,
        lap,
        visits_per_day: 12,
    }
}

/// DieselNet on Channel 1 (10 BSes).
pub fn dieselnet_ch1() -> Scenario {
    dieselnet("DieselNet-Ch1", &CH1_POSITIONS)
}

/// DieselNet on Channel 6 (14 BSes).
pub fn dieselnet_ch6() -> Scenario {
    dieselnet("DieselNet-Ch6", &CH6_POSITIONS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vifi_sim::{Rng, SimTime};

    #[test]
    fn bs_counts_match_paper() {
        assert_eq!(dieselnet_ch1().bs_ids().len(), 10);
        assert_eq!(dieselnet_ch6().bs_ids().len(), 14);
    }

    #[test]
    fn scenarios_validate() {
        dieselnet_ch1().validate();
        dieselnet_ch6().validate();
    }

    #[test]
    fn ch6_is_denser_than_ch1() {
        // Along the street, the ch6 bus should see at least as many BSes
        // on average as the ch1 bus.
        let count_visible = |s: &Scenario| {
            let veh = s.vehicle_ids()[0];
            let link = s.build_link_model(&Rng::new(5));
            let mut total = 0usize;
            let mut secs = 0usize;
            for sec in 0..180 {
                // First 180 s ≈ the street portion at 8.3 m/s.
                let t = SimTime::from_secs(sec);
                let v = s
                    .bs_ids()
                    .iter()
                    .filter(|&&bs| link.slow_prob(bs, veh, t) > 0.1)
                    .count();
                total += v;
                secs += 1;
            }
            total as f64 / secs as f64
        };
        let c1 = count_visible(&dieselnet_ch1());
        let c6 = count_visible(&dieselnet_ch6());
        assert!(c6 > c1, "ch6 {c6} vs ch1 {c1}");
        assert!(c1 >= 1.0, "ch1 average visibility {c1}");
    }

    #[test]
    fn bus_leaves_coverage_on_residential_loop() {
        let s = dieselnet_ch1();
        let veh = s.vehicle_ids()[0];
        let link = s.build_link_model(&Rng::new(6));
        // Sample the far side of the loop (roughly 60% around).
        let t = SimTime::from_secs_f64(s.lap.as_secs_f64() * 0.6);
        let visible = s
            .bs_ids()
            .iter()
            .filter(|&&bs| link.slow_prob(bs, veh, t) > 0.0)
            .count();
        assert_eq!(visible, 0, "residential loop must be out of range");
    }

    #[test]
    fn coverage_is_sparser_than_vanlan() {
        // DieselNet's linear street yields fewer simultaneously visible
        // BSes than VanLAN's clustered campus at its densest.
        let s = dieselnet_ch1();
        let veh = s.vehicle_ids()[0];
        let link = s.build_link_model(&Rng::new(7));
        let mut max_visible = 0usize;
        for sec in 0..s.lap.as_secs() {
            let t = SimTime::from_secs(sec);
            let v = s
                .bs_ids()
                .iter()
                .filter(|&&bs| link.slow_prob(bs, veh, t) > 0.1)
                .count();
            max_visible = max_visible.max(v);
        }
        assert!(max_visible <= 8, "ch1 max visible {max_visible}");
        assert!(max_visible >= 2, "ch1 max visible {max_visible}");
    }
}
