//! The synthetic VanLAN testbed.
//!
//! §2.1: eleven basestations on five buildings of the Microsoft Redmond
//! campus; the bounding box in which vehicles hear at least one packet
//! measures 828 m × 559 m; two shuttle vans circle the area at up to
//! 40 km/h, visiting the BS region about ten times a day; all radios share
//! one channel.
//!
//! Our layout places the five buildings (A–E) inside the same box with
//! 2–3 roof-mounted BSes each, and routes the shuttle loop through campus
//! and then well outside radio range — so runs exhibit the paper's
//! visit/absence rhythm. Wall-clock compression: the real shuttles idled
//! for tens of minutes between visits; our outside leg is a few minutes.
//! Per-day numbers extrapolate via [`Scenario::visits_per_day`], never by
//! simulating dead air for hours.

use vifi_phy::link::MobilitySource;
use vifi_phy::{kmh_to_ms, NodeId, NodeKind, Point, RadioParams, Route};
use vifi_sim::SimDuration;

use crate::scenario::{NodeSpec, Scenario};

/// The 11 BS rooftop positions (meters, inside the 828 × 559 box),
/// grouped by building.
pub const BS_POSITIONS: [(f64, f64); 11] = [
    // Building A (north-west)
    (120.0, 420.0),
    (165.0, 445.0),
    // Building B (north-center): the largest, 3 BSes
    (330.0, 460.0),
    (370.0, 485.0),
    (400.0, 455.0),
    // Building C (north-east)
    (540.0, 390.0),
    (590.0, 415.0),
    // Building D (south-center)
    (305.0, 210.0),
    (360.0, 235.0),
    // Building E (south-east)
    (615.0, 150.0),
    (665.0, 175.0),
];

/// The shuttle loop: a campus sweep past all five buildings, then an
/// out-of-range return leg. Closed route.
pub fn shuttle_waypoints() -> Vec<Point> {
    [
        // Campus sweep (inside coverage).
        (0.0, 350.0),
        (140.0, 390.0),
        (350.0, 430.0),
        (550.0, 370.0),
        (660.0, 250.0),
        (640.0, 170.0),
        (480.0, 160.0),
        (340.0, 200.0),
        (150.0, 280.0),
        (0.0, 320.0),
        // Out-of-range loop back to the entrance.
        (-520.0, 320.0),
        (-520.0, -420.0),
        (1350.0, -420.0),
        (1350.0, 900.0),
        (0.0, 900.0),
    ]
    .iter()
    .map(|&(x, y)| Point::new(x, y))
    .collect()
}

/// The route shuttle `v` of a `vehicles`-strong fleet drives: the shared
/// campus loop, but a *distinct* traversal per vehicle — odd-numbered vans
/// run the loop in the opposite direction (the real shuttles served the
/// same buildings on complementary schedules), and every van starts at its
/// own phase offset so the fleet spreads out instead of convoying. All
/// vans still share the eleven BSes and the single channel, so growing the
/// fleet grows contention at the same basestations.
pub fn shuttle_route(v: u32, vehicles: u32) -> Route {
    assert!(
        v < vehicles,
        "vehicle index {v} outside fleet of {vehicles}"
    );
    let speed = kmh_to_ms(40.0);
    let mut waypoints = shuttle_waypoints();
    if v % 2 == 1 {
        waypoints.reverse();
    }
    let route = Route::new(waypoints, speed, true);
    let offset = route.length() * v as f64 / vehicles as f64;
    route.with_start_offset(offset)
}

/// Build the VanLAN scenario: 11 BSes, `vehicles` shuttles on per-vehicle
/// routes (see [`shuttle_route`]) spread evenly around the loop. The
/// paper's testbed has two vans; any `vehicles ≥ 1` yields a valid fleet.
pub fn vanlan(vehicles: u32) -> Scenario {
    assert!(vehicles >= 1, "need at least one vehicle");
    let mut nodes = Vec::new();
    for (i, &(x, y)) in BS_POSITIONS.iter().enumerate() {
        nodes.push(NodeSpec {
            id: NodeId(i as u32),
            kind: NodeKind::Basestation,
            mobility: MobilitySource::Fixed(Point::new(x, y)),
            name: format!("BS-{i}"),
        });
    }
    let base_route = shuttle_route(0, vehicles);
    for v in 0..vehicles {
        nodes.push(NodeSpec {
            id: NodeId((BS_POSITIONS.len() as u32) + v),
            kind: NodeKind::Vehicle,
            mobility: MobilitySource::Mobile(shuttle_route(v, vehicles)),
            name: format!("van-{v}"),
        });
    }
    let lap = SimDuration::from_secs_f64(base_route.lap_time_s());
    Scenario {
        name: "VanLAN".into(),
        nodes,
        radio: RadioParams::default(),
        lap,
        visits_per_day: 10,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vifi_sim::{Rng, SimTime};

    #[test]
    fn layout_is_inside_the_paper_box() {
        for &(x, y) in BS_POSITIONS.iter() {
            assert!((0.0..=828.0).contains(&x), "x={x}");
            assert!((0.0..=559.0).contains(&y), "y={y}");
        }
        assert_eq!(BS_POSITIONS.len(), 11);
    }

    #[test]
    fn scenario_shape() {
        let s = vanlan(2);
        s.validate();
        assert_eq!(s.bs_ids().len(), 11);
        assert_eq!(s.vehicle_ids().len(), 2);
        assert_eq!(s.visits_per_day, 10);
        assert!(s.lap > SimDuration::from_secs(300), "lap {:?}", s.lap);
        assert!(s.lap < SimDuration::from_secs(1500), "lap {:?}", s.lap);
    }

    #[test]
    fn vehicles_are_phase_offset() {
        let s = vanlan(2);
        let v: Vec<_> = s.vehicle_ids();
        let p0 = s.position(v[0], SimTime::ZERO);
        let p1 = s.position(v[1], SimTime::ZERO);
        assert!(p0.distance(p1) > 500.0, "vans start far apart");
    }

    #[test]
    fn fleet_vans_have_distinct_routes_and_directions() {
        let s = vanlan(4);
        s.validate();
        assert_eq!(s.vehicle_ids().len(), 4);
        let vs = s.vehicle_ids();
        // Pairwise distinct trajectories.
        for i in 0..vs.len() {
            for j in i + 1..vs.len() {
                let distinct = [0u64, 60, 200].iter().any(|&sec| {
                    let t = SimTime::from_secs(sec);
                    s.position(vs[i], t).distance(s.position(vs[j], t)) > 1.0
                });
                assert!(distinct, "vans {i} and {j} share a trajectory");
            }
        }
        // Both directions trace the same loop…
        let r0 = shuttle_route(0, 1);
        let r1 = shuttle_route(1, 2);
        assert!(
            (r1.length() - r0.length()).abs() < 1e-6,
            "both directions trace the same loop"
        );
        // …but odd vans really drive it reversed: were van-1 merely
        // phase-offset (no waypoint reversal), it would coincide with a
        // forward route at the same offset. It must not.
        let fwd_offset = Route::new(shuttle_waypoints(), kmh_to_ms(40.0), true)
            .with_start_offset(r0.length() * 0.5);
        let diverges = [5u64, 30, 90, 200].iter().any(|&sec| {
            let d = sec as f64 * r1.speed_ms();
            r1.position_at_distance(d)
                .distance(fwd_offset.position_at_distance(d))
                > 1.0
        });
        assert!(
            diverges,
            "odd vans must run the loop reversed, not merely offset"
        );
    }

    #[test]
    fn fleet_construction_is_deterministic() {
        let a = vanlan(8);
        let b = vanlan(8);
        for &v in &a.vehicle_ids() {
            for sec in [0u64, 33, 117, 400] {
                let t = SimTime::from_secs(sec);
                assert_eq!(a.position(v, t), b.position(v, t));
            }
        }
    }

    #[test]
    fn shuttle_visits_and_leaves_coverage() {
        let s = vanlan(1);
        let veh = s.vehicle_ids()[0];
        let link = s.build_link_model(&Rng::new(1));
        let lap_s = s.lap.as_secs();
        let mut covered = 0u64;
        for sec in 0..lap_s {
            let t = SimTime::from_secs(sec);
            let visible = s
                .bs_ids()
                .iter()
                .filter(|&&bs| link.slow_prob(bs, veh, t) > 0.1)
                .count();
            if visible > 0 {
                covered += 1;
            }
        }
        let frac = covered as f64 / lap_s as f64;
        assert!(
            (0.15..=0.70).contains(&frac),
            "coverage fraction per lap = {frac}"
        );
    }

    #[test]
    fn campus_sweep_sees_multiple_bs() {
        // While inside the campus, the van should often see 2+ BSes
        // (the diversity premise, Fig. 5).
        let s = vanlan(1);
        let veh = s.vehicle_ids()[0];
        let link = s.build_link_model(&Rng::new(2));
        let mut multi = 0u64;
        let mut any = 0u64;
        for sec in 0..s.lap.as_secs() {
            let t = SimTime::from_secs(sec);
            let visible = s
                .bs_ids()
                .iter()
                .filter(|&&bs| link.slow_prob(bs, veh, t) > 0.1)
                .count();
            if visible >= 1 {
                any += 1;
                if visible >= 2 {
                    multi += 1;
                }
            }
        }
        assert!(any > 0);
        let frac = multi as f64 / any as f64;
        assert!(frac > 0.5, "multi-BS fraction of covered time = {frac}");
    }

    #[test]
    fn bs_pairs_form_a_connected_backbone_over_the_air() {
        // §4.1 assumes some BSes overhear each other; buildings are spaced
        // so that at least neighbouring buildings are in radio range.
        let s = vanlan(1);
        let link = s.build_link_model(&Rng::new(3));
        let bs = s.bs_ids();
        let mut audible_pairs = 0;
        for i in 0..bs.len() {
            for j in i + 1..bs.len() {
                if link.slow_prob(bs[i], bs[j], SimTime::ZERO) > 0.5 {
                    audible_pairs += 1;
                }
            }
        }
        assert!(audible_pairs >= 8, "audible BS pairs = {audible_pairs}");
    }
}
