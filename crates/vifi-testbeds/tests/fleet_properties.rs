//! Property tests for the fleet-scale scenario generators: determinism
//! per seed, per-vehicle route distinctness, and contact-window validity
//! (sorted, disjoint, inside the lap).

use proptest::prelude::*;
use vifi_sim::{Rng, SimTime};
use vifi_testbeds::{dieselnet_fleet, vanlan, Scenario};

/// Sample instants spread over the first lap (and beyond, to catch wrap
/// bugs in closed routes).
const SAMPLE_SECS: [u64; 6] = [0, 17, 61, 149, 403, 997];

fn positions_fingerprint(s: &Scenario) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    for &v in &s.vehicle_ids() {
        for &sec in &SAMPLE_SECS {
            let p = s.position(v, SimTime::from_secs(sec));
            out.push((p.x, p.y));
        }
    }
    out
}

fn assert_routes_distinct(s: &Scenario) {
    let vs = s.vehicle_ids();
    for i in 0..vs.len() {
        for j in i + 1..vs.len() {
            let distinct = SAMPLE_SECS.iter().any(|&sec| {
                let t = SimTime::from_secs(sec);
                s.position(vs[i], t).distance(s.position(vs[j], t)) > 1.0
            });
            assert!(distinct, "vehicles {i} and {j} share a trajectory");
        }
    }
}

fn assert_windows_valid(s: &Scenario, link_seed: u64) {
    let link = s.build_link_model(&Rng::new(link_seed));
    let lap_s = s.lap.as_secs();
    for &v in &s.vehicle_ids() {
        let windows = s.contact_windows(v, &link, 0.1);
        let mut prev_end = 0u64;
        for (k, &(start, end)) in windows.iter().enumerate() {
            assert!(start < end, "window {k} is non-empty: [{start}, {end})");
            assert!(end <= lap_s, "window {k} ends inside the lap");
            if k > 0 {
                assert!(
                    start > prev_end,
                    "window {k} [{start}, {end}) overlaps or touches the previous \
                     (maximal windows are separated by at least one dead second)"
                );
            }
            prev_end = end;
        }
    }
}

proptest! {
    // Scenario construction is cheap; the channel sampling in the window
    // checks is the cost, so keep case counts modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `vanlan(n)` is deterministic and its n vans ride distinct routes.
    #[test]
    fn vanlan_fleet_properties(n in 2u32..10) {
        let a = vanlan(n);
        let b = vanlan(n);
        prop_assert_eq!(a.vehicle_ids().len(), n as usize);
        prop_assert_eq!(positions_fingerprint(&a), positions_fingerprint(&b));
        assert_routes_distinct(&a);
    }

    /// `dieselnet_fleet(n, seed)` reproduces per seed, differs across
    /// seeds, and its n buses ride distinct routes.
    #[test]
    fn dieselnet_fleet_properties(n in 2u32..10, seed in 0u64..1_000) {
        let a = dieselnet_fleet(n, seed);
        let b = dieselnet_fleet(n, seed);
        let c = dieselnet_fleet(n, seed ^ 0xDEAD_BEEF);
        prop_assert_eq!(a.vehicle_ids().len(), n as usize);
        prop_assert_eq!(positions_fingerprint(&a), positions_fingerprint(&b));
        prop_assert_ne!(positions_fingerprint(&a), positions_fingerprint(&c));
        assert_routes_distinct(&a);
    }

    /// Contact windows of every fleet vehicle are non-empty intervals,
    /// sorted, disjoint, and inside the lap — on both testbeds.
    #[test]
    fn fleet_contact_windows_valid(n in 2u32..6, seed in 0u64..100) {
        assert_windows_valid(&vanlan(n), seed + 1);
        assert_windows_valid(&dieselnet_fleet(n, seed), seed + 2);
    }
}
