//! Property tests for the fleet-scale scenario generators: determinism
//! per seed, per-vehicle route distinctness, contact-window validity
//! (sorted, disjoint, inside the lap), and the contact-cluster
//! decomposition the hierarchical coupled engine synchronizes by.

use proptest::prelude::*;
use vifi_phy::NodeId;
use vifi_sim::{Rng, SimTime};
use vifi_testbeds::{dieselnet_fleet, metro, vanlan, Scenario};

/// Sample instants spread over the first lap (and beyond, to catch wrap
/// bugs in closed routes).
const SAMPLE_SECS: [u64; 6] = [0, 17, 61, 149, 403, 997];

fn positions_fingerprint(s: &Scenario) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    for &v in &s.vehicle_ids() {
        for &sec in &SAMPLE_SECS {
            let p = s.position(v, SimTime::from_secs(sec));
            out.push((p.x, p.y));
        }
    }
    out
}

fn assert_routes_distinct(s: &Scenario) {
    let vs = s.vehicle_ids();
    for i in 0..vs.len() {
        for j in i + 1..vs.len() {
            let distinct = SAMPLE_SECS.iter().any(|&sec| {
                let t = SimTime::from_secs(sec);
                s.position(vs[i], t).distance(s.position(vs[j], t)) > 1.0
            });
            assert!(distinct, "vehicles {i} and {j} share a trajectory");
        }
    }
}

fn assert_windows_valid(s: &Scenario, link_seed: u64) {
    let link = s.build_link_model(&Rng::new(link_seed));
    let lap_s = s.lap.as_secs();
    for &v in &s.vehicle_ids() {
        let windows = s.contact_windows(v, &link, 0.1);
        let mut prev_end = 0u64;
        for (k, &(start, end)) in windows.iter().enumerate() {
            assert!(start < end, "window {k} is non-empty: [{start}, {end})");
            assert!(end <= lap_s, "window {k} ends inside the lap");
            if k > 0 {
                assert!(
                    start > prev_end,
                    "window {k} [{start}, {end}) overlaps or touches the previous \
                     (maximal windows are separated by at least one dead second)"
                );
            }
            prev_end = end;
        }
    }
}

proptest! {
    // Scenario construction is cheap; the channel sampling in the window
    // checks is the cost, so keep case counts modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `vanlan(n)` is deterministic and its n vans ride distinct routes.
    #[test]
    fn vanlan_fleet_properties(n in 2u32..10) {
        let a = vanlan(n);
        let b = vanlan(n);
        prop_assert_eq!(a.vehicle_ids().len(), n as usize);
        prop_assert_eq!(positions_fingerprint(&a), positions_fingerprint(&b));
        assert_routes_distinct(&a);
    }

    /// `dieselnet_fleet(n, seed)` reproduces per seed, differs across
    /// seeds, and its n buses ride distinct routes.
    #[test]
    fn dieselnet_fleet_properties(n in 2u32..10, seed in 0u64..1_000) {
        let a = dieselnet_fleet(n, seed);
        let b = dieselnet_fleet(n, seed);
        let c = dieselnet_fleet(n, seed ^ 0xDEAD_BEEF);
        prop_assert_eq!(a.vehicle_ids().len(), n as usize);
        prop_assert_eq!(positions_fingerprint(&a), positions_fingerprint(&b));
        prop_assert_ne!(positions_fingerprint(&a), positions_fingerprint(&c));
        assert_routes_distinct(&a);
    }

    /// Contact windows of every fleet vehicle are non-empty intervals,
    /// sorted, disjoint, and inside the lap — on both testbeds.
    #[test]
    fn fleet_contact_windows_valid(n in 2u32..6, seed in 0u64..100) {
        assert_windows_valid(&vanlan(n), seed + 1);
        assert_windows_valid(&dieselnet_fleet(n, seed), seed + 2);
    }

    /// The contact-cluster decomposition is sound on every generator:
    /// clusters exactly cover the fleet (each node in exactly one,
    /// members sorted, clusters ordered by smallest member), and nodes
    /// of different clusters are contact-disjoint — zero delivery
    /// probability in both directions at every sampled instant of the
    /// lap, so no coarse window can carry cross-cluster radio traffic.
    #[test]
    fn contact_clusters_cover_and_are_radio_disjoint(
        districts in 2u32..5,
        vans in 1u32..4,
        seed in 0u64..1_000,
    ) {
        for s in [metro(districts, vans, seed), vanlan(vans + 1), dieselnet_fleet(vans + 1, seed)] {
            let link = s.build_link_model(&Rng::new(seed ^ 0x5A5A));
            let clusters = s.contact_clusters(&link);
            // Exact cover with dense ids: sorted concatenation is 0..n.
            let mut all: Vec<NodeId> = clusters.iter().flatten().copied().collect();
            all.sort_by_key(|n| n.index());
            prop_assert_eq!(all.len(), s.nodes.len(), "{}", s.name);
            for (i, n) in all.iter().enumerate() {
                prop_assert_eq!(n.index(), i, "each node in exactly one cluster");
            }
            for c in &clusters {
                prop_assert!(c.windows(2).all(|w| w[0] < w[1]), "members sorted");
            }
            prop_assert!(
                clusters.windows(2).all(|w| w[0][0] < w[1][0]),
                "clusters ordered by smallest member"
            );
            // Cross-cluster pairs never hear each other. Sample a grid of
            // seconds over the lap (the decomposition itself sweeps all).
            let lap_s = s.lap.as_secs().max(1);
            for (i, a) in clusters.iter().enumerate() {
                for b in clusters.iter().skip(i + 1) {
                    for &x in a {
                        for &y in b {
                            for k in 0..8u64 {
                                let t = SimTime::from_secs(k * lap_s / 8);
                                prop_assert!(
                                    link.slow_prob(x, y, t) == 0.0
                                        && link.slow_prob(y, x, t) == 0.0,
                                    "{}: cross-cluster contact {:?}-{:?} at {:?}",
                                    s.name, x, y, t
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// The decomposition is a pure function of `(scenario, link
    /// geometry)`: independently rebuilt scenarios and link models give
    /// identical clusters, and restricting the schedule-relevant inputs
    /// that a sharded run varies — shard count, worker count — never
    /// enters the function at all, so per-cluster active ranges derived
    /// from it are identical too.
    #[test]
    fn contact_clusters_are_a_pure_function_of_the_scenario(
        districts in 2u32..4,
        vans in 1u32..3,
        seed in 0u64..1_000,
    ) {
        let a = metro(districts, vans, seed);
        let b = metro(districts, vans, seed);
        let link_a = a.build_link_model(&Rng::new(7));
        let link_b = b.build_link_model(&Rng::new(7));
        let ca = a.contact_clusters(&link_a);
        let cb = b.contact_clusters(&link_b);
        prop_assert_eq!(&ca, &cb, "independent rebuilds agree");
        // Per-cluster active ranges reproduce as well, and their union
        // covers the fleet-level active ranges (no lost active second).
        let horizon_s = 30u64;
        let fleet: Vec<(u64, u64)> = a.active_seconds(&link_a, horizon_s, 2);
        let mut covered = vec![false; horizon_s as usize];
        for c in &ca {
            let ranges = a.cluster_active_seconds(&link_a, horizon_s, 2, c);
            prop_assert_eq!(
                &ranges,
                &b.cluster_active_seconds(&link_b, horizon_s, 2, c),
                "per-cluster ranges reproduce"
            );
            for (lo, hi) in ranges {
                for sec in lo..hi.min(horizon_s) {
                    covered[sec as usize] = true;
                }
            }
        }
        for (lo, hi) in fleet {
            for sec in lo..hi.min(horizon_s) {
                prop_assert!(
                    covered[sec as usize],
                    "active second {} lost by the per-cluster split", sec
                );
            }
        }
    }
}
