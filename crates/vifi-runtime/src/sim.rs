//! The full-stack discrete-event simulation.
//!
//! One [`Simulation`] = one experiment run: a link model (physical or
//! trace-driven), the CSMA medium, the backplane, a ViFi/BRR endpoint per
//! radio node, one or more vehicles carrying application workloads, and an
//! Internet host behind a wired hop. Determinism: everything derives from
//! `(RunConfig, seed)`.
//!
//! ## Fleet runs
//!
//! By default only the first vehicle carries [`RunConfig::workload`] (the
//! paper's single instrumented vehicle); any further vehicles in the
//! scenario run the protocol as background channel occupants. Setting
//! [`RunConfig::fleet_workloads`] gives *every* vehicle its own workload
//! driver (vehicle *i* takes entry `i % len`), each with its own RNG
//! stream and its own wired path to the Internet host. The detailed
//! packet-level [`RunLog`] still follows the first vehicle's flows only —
//! it feeds the paper's per-packet tables — while per-vehicle outcomes
//! come back in [`RunOutcome::vehicles`].
//!
//! ## Sharded runs
//!
//! A single large fleet run can be sharded across cores with
//! [`RunConfig::shards`] and [`Simulation::run_sharded`]. The unit of
//! decomposition is the *vehicle* (a "micro-shard"): each instrumented
//! vehicle is simulated in its own sub-run against the full basestation
//! infrastructure, with its RNG stream derived deterministically from
//! `(run_seed, vehicle)`; a shard is the worker that owns a disjoint set
//! of vehicles and executes their sub-runs. Because the simulation unit
//! and its seed never depend on the shard count, the merged
//! [`RunOutcome`] is **bit-identical for every `shards >= 2`** — and for
//! single-vehicle scenarios bit-identical to the sequential
//! (`shards = 1`) run as well. What `shards >= 2` gives up is
//! cross-vehicle channel coupling (fleet members no longer contend for
//! airtime at shared basestations, and background vehicles that carry no
//! workload are dropped); the sequential `shards = 1` path keeps the
//! paper's fully-coupled semantics, unchanged. The merge is
//! deterministic: per-vehicle outcomes are ordered by vehicle id,
//! counters sum, and the packet log is the first vehicle's, remapped to
//! the parent scenario's node ids.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use bytes::Bytes;
use vifi_core::endpoint::BackplaneMsg;
use vifi_core::{Action, Direction, Endpoint, PacketId, Role, StatEvent, VifiConfig, VifiPayload};
use vifi_mac::{Backplane, BackplaneParams, BeaconSchedule, Frame, MacParams, Medium, TxHandle};
use vifi_phy::{LinkModel, NodeId, NodeKind};
use vifi_sim::{Rng, Scheduler, SimDuration, SimTime, TimerToken};
use vifi_testbeds::trace::TraceSimSetup;
use vifi_testbeds::{BeaconTrace, Scenario};

use crate::fingerprint::{Fingerprint, Fingerprintable};
use crate::logging::RunLog;
use crate::workload::{build_driver, Driver, HostApi, HostCmd, WorkloadReport, WorkloadSpec};

/// Experiment configuration.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Protocol configuration (ViFi / BRR / ablations).
    pub vifi: VifiConfig,
    /// Application workload of the instrumented (first) vehicle.
    pub workload: WorkloadSpec,
    /// Fleet mode: when non-empty, every vehicle in the scenario gets its
    /// own workload driver — vehicle `i` (scenario order) takes entry
    /// `i % fleet_workloads.len()`, and `workload` is ignored. Empty
    /// (default) preserves the paper's setup: one instrumented vehicle,
    /// any others idle.
    pub fleet_workloads: Vec<WorkloadSpec>,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Run seed.
    pub seed: u64,
    /// MAC parameters.
    pub mac: MacParams,
    /// Backplane parameters.
    pub backplane: BackplaneParams,
    /// One-way wired delay between the anchor and the Internet host.
    /// Note: VoIP runs should keep this 0 — the VoIP scorer adds the
    /// paper's fixed 40 ms wired budget itself (§5.3.2).
    pub wired_delay: SimDuration,
    /// Execution sharding for [`Simulation::run_sharded`]. `1` (the
    /// default) is the paper's fully-coupled single event loop —
    /// `run_sharded` and [`Simulation::run`] are then the same path.
    /// `>= 2` decomposes the run by vehicle across that many worker
    /// shards (`0` = one shard per available core, floored at two so the
    /// choice of semantics never depends on the host); the merged outcome
    /// is invariant to the exact count — see the module docs on what the
    /// decomposition trades away. Ignored by plain [`Simulation::run`].
    pub shards: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            vifi: VifiConfig::default(),
            workload: WorkloadSpec::Idle,
            fleet_workloads: Vec::new(),
            duration: SimDuration::from_secs(60),
            seed: 1,
            mac: MacParams::default(),
            backplane: BackplaneParams::default(),
            wired_delay: SimDuration::from_millis(10),
            shards: 1,
        }
    }
}

/// Scheduler events.
enum Event {
    /// A node's beacon is due.
    Beacon(NodeId),
    /// A wireless transmission completed.
    TxDone(NodeId, TxHandle),
    /// A node's protocol timer fired.
    Wakeup(NodeId),
    /// A backplane message arrived.
    BackplaneArrive {
        from: NodeId,
        to: NodeId,
        msg: BackplaneMsg,
    },
    /// A downstream application payload reached the anchor's radio side.
    WiredDownArrive {
        /// The vehicle the payload is addressed to.
        vehicle: NodeId,
        payload: Bytes,
    },
    /// An upstream application payload reached the Internet host.
    WiredUpArrive {
        /// The vehicle that originated the payload.
        vehicle: NodeId,
        payload: Bytes,
        /// When the anchor received it (radio exit time).
        radio_exit: SimTime,
    },
    /// Workload tick for one vehicle's driver.
    AppTick { vehicle: NodeId, chan: u8 },
}

/// Per-vehicle results of a (fleet) run — one entry per workload-carrying
/// vehicle, in scenario order.
#[derive(Clone, Debug)]
pub struct VehicleOutcome {
    /// The vehicle's node id.
    pub vehicle: NodeId,
    /// Its workload-level report.
    pub report: WorkloadReport,
    /// Anchor switches this vehicle performed.
    pub anchor_switches: u64,
    /// Downstream packets for this vehicle dropped for lack of an anchor.
    pub unroutable_down: u64,
}

/// Results of one run.
pub struct RunOutcome {
    /// Workload-level report of the instrumented (first) vehicle.
    pub report: WorkloadReport,
    /// Per-vehicle outcomes: one entry per workload-carrying vehicle (just
    /// the instrumented vehicle by default; all of them in fleet mode).
    pub vehicles: Vec<VehicleOutcome>,
    /// Packet-level log of the instrumented vehicle's flows (Tables 1/2,
    /// Fig. 12, PerfectRelay).
    pub log: RunLog,
    /// Anchor switches observed at the instrumented vehicle.
    pub anchor_switches: u64,
    /// Packets recovered through salvage at new anchors (all vehicles).
    pub salvaged: u64,
    /// Downstream app packets dropped because their vehicle had no anchor.
    pub unroutable_down: u64,
    /// Total events dispatched (performance accounting).
    pub events: u64,
    /// Total wireless frames transmitted.
    pub frames_tx: u64,
}

/// One vehicle's workload host: its driver, its RNG stream, and its
/// per-vehicle counters.
struct VehicleHost {
    /// Taken out while the driver runs (so the host API can borrow `rng`).
    driver: Option<Box<dyn Driver>>,
    rng: Rng,
    anchor_switches: u64,
    unroutable_down: u64,
}

/// The assembled simulation.
pub struct Simulation {
    cfg: RunConfig,
    sched: Scheduler<Event>,
    link: Box<dyn LinkModel>,
    medium: Medium<VifiPayload>,
    backplane: Backplane,
    beacons: BeaconSchedule,
    endpoints: HashMap<NodeId, Endpoint>,
    iface_busy: HashMap<NodeId, bool>,
    pending_beacon: HashMap<NodeId, (VifiPayload, u32)>,
    wakeup_tokens: HashMap<NodeId, TimerToken>,
    /// The instrumented vehicle (detailed packet log).
    vehicle: NodeId,
    bs_ids: Vec<NodeId>,
    /// Workload hosts in scenario order (linear lookup: fleets are small).
    hosts: Vec<(NodeId, VehicleHost)>,
    log: RunLog,
    rng_mac: Rng,
    salvaged: u64,
}

impl Simulation {
    /// Deployment mode: build from a scenario (physical channel). The
    /// first vehicle is instrumented; any further vehicles run the
    /// protocol (beacons, anchoring) as background occupants of the
    /// channel.
    pub fn deployment(scenario: &Scenario, cfg: RunConfig) -> Self {
        Self::deployment_shard(scenario, cfg, 0)
    }

    /// Deployment mode under a specific scheduler shard id (sharded
    /// sub-runs tag their event queues so timer tokens are distinct
    /// across shards; the id itself never changes simulation results).
    fn deployment_shard(scenario: &Scenario, cfg: RunConfig, shard: u32) -> Self {
        let rng = Rng::new(cfg.seed);
        let link = Box::new(scenario.build_link_model(&rng));
        let vehicles = scenario.vehicle_ids();
        let bs_ids = scenario.bs_ids();
        Self::assemble(link, vehicles, bs_ids, cfg, rng, shard)
    }

    /// Trace-driven mode (§5.1): build from a beacon trace.
    pub fn trace_driven(trace: &BeaconTrace, cfg: RunConfig) -> Self {
        let rng = Rng::new(cfg.seed);
        let setup = TraceSimSetup::from_trace(trace, &rng);
        let vehicles = vec![setup.vehicle];
        let bs_ids = setup.bs_ids.clone();
        Self::assemble(Box::new(setup.link), vehicles, bs_ids, cfg, rng, 0)
    }

    fn assemble(
        link: Box<dyn LinkModel>,
        vehicles: Vec<NodeId>,
        bs_ids: Vec<NodeId>,
        cfg: RunConfig,
        rng: Rng,
        shard: u32,
    ) -> Self {
        assert!(!vehicles.is_empty() && !bs_ids.is_empty());
        let mut endpoints = HashMap::new();
        let mut iface_busy = HashMap::new();
        for &v in &vehicles {
            endpoints.insert(
                v,
                Endpoint::new(
                    v,
                    Role::Vehicle,
                    cfg.vifi.clone(),
                    bs_ids.clone(),
                    rng.fork(0x5EED_0000 + v.label()),
                ),
            );
            iface_busy.insert(v, false);
        }
        for &b in &bs_ids {
            endpoints.insert(
                b,
                Endpoint::new(
                    b,
                    Role::Bs,
                    cfg.vifi.clone(),
                    bs_ids.clone(),
                    rng.fork(0x5EED_1000 + b.label()),
                ),
            );
            iface_busy.insert(b, false);
        }
        let beacons = BeaconSchedule::new(cfg.vifi.beacon_period, &rng);
        // Workload hosts: the instrumented vehicle alone by default, every
        // vehicle in fleet mode. The first vehicle keeps the historical
        // "driver" RNG stream so single-vehicle runs replay bit-identically
        // across this refactor; fleet members fork per-vehicle streams.
        let driver_rng = rng.fork_named("driver");
        let hosts: Vec<(NodeId, VehicleHost)> = if cfg.fleet_workloads.is_empty() {
            vec![(
                vehicles[0],
                VehicleHost {
                    driver: Some(build_driver(&cfg.workload, SimTime::ZERO)),
                    rng: driver_rng,
                    anchor_switches: 0,
                    unroutable_down: 0,
                },
            )]
        } else {
            vehicles
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    let spec = &cfg.fleet_workloads[i % cfg.fleet_workloads.len()];
                    (
                        v,
                        VehicleHost {
                            driver: Some(build_driver(spec, SimTime::ZERO)),
                            rng: if i == 0 {
                                driver_rng.fork(0)
                            } else {
                                driver_rng.fork(v.label())
                            },
                            anchor_switches: 0,
                            unroutable_down: 0,
                        },
                    )
                })
                .collect()
        };
        Simulation {
            medium: Medium::new(cfg.mac),
            backplane: Backplane::new(cfg.backplane),
            beacons,
            sched: Scheduler::with_shard(shard),
            link,
            endpoints,
            iface_busy,
            pending_beacon: HashMap::new(),
            wakeup_tokens: HashMap::new(),
            vehicle: vehicles[0],
            bs_ids,
            hosts,
            log: RunLog::new(),
            rng_mac: rng.fork_named("mac"),
            cfg,
            salvaged: 0,
        }
    }

    /// The instrumented vehicle's node id.
    pub fn vehicle(&self) -> NodeId {
        self.vehicle
    }

    fn is_bs(&self, n: NodeId) -> bool {
        self.bs_ids.contains(&n)
    }

    /// Traffic direction of a data frame by its logical source.
    fn dir_of_src(&self, flow_src: NodeId) -> Direction {
        if self.is_bs(flow_src) {
            Direction::Downstream
        } else {
            Direction::Upstream
        }
    }

    /// The vehicle a data flow belongs to: the mobile end of the transfer.
    fn flow_vehicle(&self, flow_src: NodeId, flow_dst: NodeId) -> NodeId {
        if self.is_bs(flow_src) {
            flow_dst
        } else {
            flow_src
        }
    }

    fn host_mut(&mut self, vehicle: NodeId) -> Option<&mut VehicleHost> {
        self.hosts
            .iter_mut()
            .find(|(v, _)| *v == vehicle)
            .map(|(_, h)| h)
    }

    /// Run to completion and produce the outcome.
    pub fn run(mut self) -> RunOutcome {
        // Kick off beacons for every radio node.
        let ids: Vec<NodeId> = self.endpoints.keys().copied().collect();
        for id in ids {
            let at = self.beacons.next_after(id, SimTime::ZERO);
            self.sched.at(at, Event::Beacon(id));
        }
        // Start every workload driver, in scenario order.
        let workload_vehicles: Vec<NodeId> = self.hosts.iter().map(|(v, _)| *v).collect();
        for &v in &workload_vehicles {
            self.with_driver(v, SimTime::ZERO, |d, api| d.start(api));
        }

        let horizon = SimTime::ZERO + self.cfg.duration;
        while let Some(at) = self.sched.peek_time() {
            if at > horizon {
                break;
            }
            let (now, ev) = self.sched.step().expect("peeked event vanished");
            self.dispatch(now, ev);
        }

        let end = self.sched.now();
        let vehicles: Vec<VehicleOutcome> = self
            .hosts
            .iter_mut()
            .map(|(v, host)| VehicleOutcome {
                vehicle: *v,
                report: host
                    .driver
                    .as_mut()
                    .expect("driver present at run end")
                    .report(end),
                anchor_switches: host.anchor_switches,
                unroutable_down: host.unroutable_down,
            })
            .collect();
        let report = vehicles
            .first()
            .map(|v| v.report.clone())
            .expect("at least one workload vehicle");
        // The run-level counters derive from the per-host ones: the
        // instrumented vehicle always owns the first host.
        RunOutcome {
            report,
            anchor_switches: vehicles[0].anchor_switches,
            unroutable_down: vehicles.iter().map(|v| v.unroutable_down).sum(),
            vehicles,
            salvaged: self.salvaged,
            events: self.sched.dispatched(),
            frames_tx: self.medium.tx_count,
            log: self.log,
        }
    }

    fn dispatch(&mut self, now: SimTime, ev: Event) {
        match ev {
            Event::Beacon(node) => self.on_beacon_due(node, now),
            Event::TxDone(node, handle) => self.on_tx_done(node, handle, now),
            Event::Wakeup(node) => {
                self.wakeup_tokens.remove(&node);
                let acts = self
                    .endpoints
                    .get_mut(&node)
                    .expect("endpoint")
                    .on_wakeup(now);
                self.handle_actions(node, acts, now);
                self.pump(node, now);
            }
            Event::BackplaneArrive { from, to, msg } => {
                if let BackplaneMsg::RelayData(d) = &msg {
                    // An upstream relay reaching the anchor's process
                    // counts as having reached the destination. Only the
                    // instrumented vehicle's flows enter the packet log.
                    if self.flow_vehicle(d.flow_src, d.flow_dst) == self.vehicle {
                        self.log.on_relay(d.id, from, true, true);
                    }
                }
                if let BackplaneMsg::SalvageData { packets, .. } = &msg {
                    self.salvaged += packets.len() as u64;
                }
                let acts = match self.endpoints.get_mut(&to) {
                    Some(ep) => ep.on_backplane(from, &msg, now),
                    None => Vec::new(),
                };
                self.handle_actions(to, acts, now);
                self.pump(to, now);
            }
            Event::WiredDownArrive { vehicle, payload } => {
                let anchor = self
                    .endpoints
                    .get(&vehicle)
                    .expect("vehicle endpoint")
                    .anchor();
                match anchor {
                    Some(a) => {
                        self.endpoints
                            .get_mut(&a)
                            .expect("anchor endpoint")
                            .send_app(payload, Some(vehicle), now);
                        self.pump(a, now);
                    }
                    None => {
                        // Only hosted vehicles receive downstream traffic,
                        // so the per-host counter misses nothing.
                        if let Some(host) = self.host_mut(vehicle) {
                            host.unroutable_down += 1;
                        }
                    }
                }
            }
            Event::WiredUpArrive {
                vehicle,
                payload,
                radio_exit,
            } => {
                self.with_driver(vehicle, now, |d, api| {
                    d.on_internet_rx(&payload, radio_exit, api)
                });
            }
            Event::AppTick { vehicle, chan } => {
                self.with_driver(vehicle, now, |d, api| d.on_tick(chan, api));
            }
        }
    }

    // ------------------------------------------------------------------
    // Beacons and the interface
    // ------------------------------------------------------------------

    fn on_beacon_due(&mut self, node: NodeId, now: SimTime) {
        let (payload, bytes, acts) = self
            .endpoints
            .get_mut(&node)
            .expect("endpoint")
            .make_beacon(now);
        self.handle_actions(node, acts, now);
        if node == self.vehicle {
            if let VifiPayload::Beacon(b) = &payload {
                if let Some(v) = &b.vehicle {
                    // A1 counts auxiliaries while connected (the paper's
                    // statistics come from packet logs, which only exist
                    // when an anchor carries traffic).
                    if v.anchor.is_some() {
                        self.log.on_aux_sample(now.second_bin(), v.aux.len());
                    }
                }
            }
        }
        if self.iface_busy[&node] {
            // Replace any stale pending beacon with the fresh one.
            self.pending_beacon.insert(node, (payload, bytes));
        } else {
            self.start_tx(node, payload, bytes, now);
        }
        let next = self.beacons.next_after(node, now);
        self.sched.at(next, Event::Beacon(node));
        self.pump(node, now);
    }

    fn start_tx(&mut self, node: NodeId, payload: VifiPayload, bytes: u32, now: SimTime) {
        let frame = Frame::new(node, bytes, payload);
        let (handle, _start, end) =
            self.medium
                .begin_tx(frame, now, self.link.as_ref(), &mut self.rng_mac);
        self.iface_busy.insert(node, true);
        self.sched.at(end, Event::TxDone(node, handle));
    }

    fn on_tx_done(&mut self, node: NodeId, handle: TxHandle, now: SimTime) {
        let (frame, receptions) =
            self.medium
                .complete_tx(handle, now, self.link.as_mut(), &mut self.rng_mac);
        let rx_ids: Vec<NodeId> = receptions.iter().map(|r| r.rx).collect();

        // ---- instrumentation (instrumented vehicle's flows only: the
        // packet log feeds the paper's per-packet tables, which follow one
        // vehicle; fleet members are accounted at the workload layer) ----
        match &frame.payload {
            VifiPayload::Data(d) if self.flow_vehicle(d.flow_src, d.flow_dst) == self.vehicle => {
                let dir = self.dir_of_src(d.flow_src);
                let ledger = match dir {
                    Direction::Upstream => &mut self.log.ledger_up,
                    Direction::Downstream => &mut self.log.ledger_down,
                };
                ledger.on_wireless_tx();
                if let Some(relayer) = d.relayed_by {
                    // A wireless (downstream) relay: its fate is whether
                    // the destination received it.
                    let reached = rx_ids.contains(&d.flow_dst);
                    self.log.on_relay(d.id, relayer, false, reached);
                } else {
                    // Source transmission: snapshot the aux set and who
                    // heard what.
                    let aux_set = self
                        .endpoints
                        .get_mut(&self.vehicle)
                        .expect("vehicle")
                        .current_aux(now);
                    let aux_heard: Vec<NodeId> = rx_ids
                        .iter()
                        .copied()
                        .filter(|n| aux_set.contains(n))
                        .collect();
                    let dst_heard = rx_ids.contains(&d.flow_dst);
                    self.log
                        .on_source_tx(d.id, dir, now, aux_set, aux_heard, dst_heard);
                }
            }
            VifiPayload::Ack(a) => {
                // The flow's vehicle: the origin for upstream flows, the
                // acknowledging destination for downstream ones.
                let veh = if self.is_bs(a.id.origin) {
                    a.from
                } else {
                    a.id.origin
                };
                if veh == self.vehicle {
                    self.log.on_ack_heard(a.id, &rx_ids);
                    let dir = self.dir_of_src(a.id.origin);
                    match dir {
                        Direction::Upstream => self.log.ledger_up.on_ack_tx(),
                        Direction::Downstream => self.log.ledger_down.on_ack_tx(),
                    }
                }
            }
            VifiPayload::Data(_) | VifiPayload::Beacon(_) => {}
        }

        // ---- delivery to receivers ----
        for rx in rx_ids {
            if let Some(ep) = self.endpoints.get_mut(&rx) {
                let acts = ep.on_frame(&frame.payload, now);
                self.handle_actions(rx, acts, now);
                self.pump(rx, now);
            }
        }

        // ---- sender interface is free again ----
        self.iface_busy.insert(node, false);
        if let Some((payload, bytes)) = self.pending_beacon.remove(&node) {
            self.start_tx(node, payload, bytes, now);
        }
        self.pump(node, now);
    }

    /// Refresh a node's wakeup timer and start a transmission if its
    /// interface is idle and it has frames queued.
    fn pump(&mut self, node: NodeId, now: SimTime) {
        // Wakeup timer maintenance.
        let next = self.endpoints.get(&node).and_then(|ep| ep.next_wakeup());
        if let Some(tok) = self.wakeup_tokens.remove(&node) {
            self.sched.cancel(tok);
        }
        if let Some(at) = next {
            let at = at.max(now);
            let tok = self.sched.at(at, Event::Wakeup(node));
            self.wakeup_tokens.insert(node, tok);
        }
        // Interface.
        if !self.iface_busy[&node] {
            if let Some(ep) = self.endpoints.get_mut(&node) {
                if ep.has_tx() {
                    if let Some((payload, bytes)) = ep.pull_frame(now) {
                        self.start_tx(node, payload, bytes, now);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Endpoint actions and driver plumbing
    // ------------------------------------------------------------------

    fn handle_actions(&mut self, node: NodeId, acts: Vec<Action>, now: SimTime) {
        for act in acts {
            match act {
                Action::Deliver { id, app, dir } => self.on_deliver(node, id, app, dir, now),
                Action::Backplane { to, msg } => {
                    let bytes = msg.wire_bytes();
                    if let BackplaneMsg::RelayData(d) = &msg {
                        if self.flow_vehicle(d.flow_src, d.flow_dst) == self.vehicle {
                            self.log.ledger_up.on_backplane_tx();
                        }
                    }
                    match self.backplane.send(node, to, bytes, now) {
                        Some(at) => {
                            self.sched.at(
                                at,
                                Event::BackplaneArrive {
                                    from: node,
                                    to,
                                    msg,
                                },
                            );
                        }
                        None => {
                            // Like the rest of the log, drops are scoped
                            // to the instrumented vehicle's traffic.
                            let veh = match &msg {
                                BackplaneMsg::RelayData(d) => {
                                    self.flow_vehicle(d.flow_src, d.flow_dst)
                                }
                                BackplaneMsg::SalvageRequest { vehicle, .. }
                                | BackplaneMsg::SalvageData { vehicle, .. } => *vehicle,
                            };
                            if veh == self.vehicle {
                                self.log.backplane_drops += 1;
                                if let BackplaneMsg::RelayData(d) = &msg {
                                    self.log.on_relay(d.id, node, true, false);
                                }
                            }
                        }
                    }
                }
                Action::Stat(ev) => self.on_stat(node, ev),
            }
        }
    }

    fn on_deliver(&mut self, node: NodeId, id: PacketId, app: Bytes, dir: Direction, now: SimTime) {
        match dir {
            Direction::Downstream => {
                // At a vehicle: hand to its workload driver, if it has one.
                if node == self.vehicle {
                    self.log.on_delivered(id);
                    self.log.ledger_down.on_delivered();
                }
                self.with_driver(node, now, |d, api| d.on_vehicle_rx(&app, api));
            }
            Direction::Upstream => {
                // At the anchor: forward over the wired hop toward the
                // originating vehicle's Internet peer.
                if id.origin == self.vehicle {
                    self.log.on_delivered(id);
                    self.log.ledger_up.on_delivered();
                }
                self.sched.at(
                    now + self.cfg.wired_delay,
                    Event::WiredUpArrive {
                        vehicle: id.origin,
                        payload: app,
                        radio_exit: now,
                    },
                );
            }
        }
    }

    fn on_stat(&mut self, node: NodeId, ev: StatEvent) {
        match ev {
            StatEvent::RelayDecision {
                id,
                dir: _,
                prob,
                relayed,
            } => {
                // Attaches only to packets already in the log, i.e. the
                // instrumented vehicle's flows.
                self.log.on_decision(id, node, prob, relayed);
            }
            StatEvent::AnchorSwitch { .. } => {
                if let Some(host) = self.host_mut(node) {
                    host.anchor_switches += 1;
                }
            }
            StatEvent::Salvaged { .. } => {
                // Counted at BackplaneArrive (covers the transfer itself).
            }
            StatEvent::RelaySuppressed { .. } | StatEvent::SourceDrop { .. } => {}
        }
    }

    fn with_driver<F>(&mut self, vehicle: NodeId, now: SimTime, f: F)
    where
        F: FnOnce(&mut dyn Driver, &mut HostApi),
    {
        // Vehicles without a workload driver (background fleet members in
        // non-fleet runs) simply have no host entry.
        let Some(idx) = self.hosts.iter().position(|(v, _)| *v == vehicle) else {
            return;
        };
        let mut driver = self.hosts[idx].1.driver.take().expect("driver present");
        let mut api = HostApi {
            now,
            rng: &mut self.hosts[idx].1.rng,
            cmds: Vec::new(),
        };
        f(driver.as_mut(), &mut api);
        let cmds = api.cmds;
        self.hosts[idx].1.driver = Some(driver);
        for cmd in cmds {
            match cmd {
                HostCmd::SendUpstream(bytes) => {
                    self.endpoints
                        .get_mut(&vehicle)
                        .expect("vehicle endpoint")
                        .send_app(bytes, None, now);
                    self.pump(vehicle, now);
                }
                HostCmd::SendDownstream(bytes) => {
                    self.sched.at(
                        now + self.cfg.wired_delay,
                        Event::WiredDownArrive {
                            vehicle,
                            payload: bytes,
                        },
                    );
                }
                HostCmd::ScheduleTick { chan, at } => {
                    self.sched.at(at.max(now), Event::AppTick { vehicle, chan });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Sharded execution
// ---------------------------------------------------------------------

/// One shard of a sharded run: the worker-owned disjoint set of vehicles
/// it simulates, in fleet order. See the module docs for the semantics.
#[derive(Clone, Debug)]
pub struct ShardAssignment {
    /// Shard identity (also stamped into the shard's timer tokens).
    pub shard_id: u32,
    /// `(fleet_index, vehicle)` pairs owned by this shard; `fleet_index`
    /// is the vehicle's position in [`Scenario::vehicle_ids`] order.
    pub vehicles: Vec<(usize, NodeId)>,
}

/// The deterministic execution plan of a sharded run.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// One assignment per shard (trailing shards may be empty when the
    /// shard count exceeds the instrumented-vehicle count).
    pub assignments: Vec<ShardAssignment>,
}

impl ShardPlan {
    /// Total instrumented vehicles across all assignments.
    pub fn vehicles(&self) -> usize {
        self.assignments.iter().map(|a| a.vehicles.len()).sum()
    }
}

/// Wall-clock accounting of one shard of a sharded run: how long the
/// shard's sub-runs took on their worker. The maximum across shards is
/// the run's critical path — the wall-clock it needs when every shard
/// has its own core.
#[derive(Clone, Debug)]
pub struct ShardTiming {
    /// Which shard.
    pub shard_id: u32,
    /// How many vehicles the shard simulated.
    pub vehicles: usize,
    /// Wall-clock the shard spent simulating them.
    pub wall: Duration,
}

/// Resolve the configured shard count: `0` means one shard per available
/// core, floored at two so `0` always selects the *decomposed* semantics
/// — were a single-core host to resolve to the coupled `1` path, the
/// same config would produce different physics on different machines.
/// (The floor costs nothing: merged outcomes are invariant to the shard
/// count anyway.)
fn resolve_shards(shards: usize) -> usize {
    if shards == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .max(2)
    } else {
        shards
    }
}

/// Build the deterministic shard plan for `(scenario, cfg)`: the
/// instrumented vehicles (every vehicle in fleet mode, the first vehicle
/// otherwise), partitioned by [`Scenario::shard_partition`] (round-robin
/// in fleet order) across the resolved shard count. A pure function of
/// its inputs — the plan is as replayable as the run (the core count
/// only enters through `shards == 0`). Note that *which* shard owns a
/// vehicle only affects scheduling, never results: merged outcomes are
/// invariant to the partition (the equivalence suite proves it), which
/// is also why alternative partitions like
/// [`Scenario::shard_partition_by_contact`] are pure load-balancing
/// choices.
pub fn plan_shards(scenario: &Scenario, cfg: &RunConfig) -> ShardPlan {
    let shards = resolve_shards(cfg.shards).max(1);
    let fleet_index: HashMap<NodeId, usize> = scenario
        .vehicle_ids()
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, i))
        .collect();
    let groups: Vec<Vec<NodeId>> = if cfg.fleet_workloads.is_empty() {
        // Non-fleet mode instruments only the first vehicle; the rest of
        // the partition stays empty.
        let mut groups = vec![Vec::new(); shards];
        groups[0].push(scenario.vehicle_ids()[0]);
        groups
    } else {
        scenario.shard_partition(shards)
    };
    ShardPlan {
        assignments: groups
            .into_iter()
            .enumerate()
            .map(|(s, vehicles)| ShardAssignment {
                shard_id: s as u32,
                vehicles: vehicles.into_iter().map(|v| (fleet_index[&v], v)).collect(),
            })
            .collect(),
    }
}

/// The seed of one vehicle's micro-shard sub-run. The partition unit is
/// the vehicle, so streams are keyed by `(run_seed, vehicle)` — never by
/// the shard count — which is what makes sharded outcomes invariant to
/// how many workers execute the plan. Fleet index 0 keeps the run seed
/// itself, so a single-vehicle scenario's sharded run replays the
/// sequential run bit-for-bit.
fn micro_shard_seed(seed: u64, fleet_index: usize, vehicle: NodeId) -> u64 {
    if fleet_index == 0 {
        seed
    } else {
        Rng::new(seed)
            .fork_named("shard")
            .fork(vehicle.label())
            .next_u64()
    }
}

/// Run one vehicle's micro-shard: restrict the scenario to the vehicle
/// plus the full infrastructure, run it under its derived seed, and remap
/// the outcome back into the parent scenario's node-id space.
fn run_micro_shard(
    scenario: &Scenario,
    cfg: &RunConfig,
    fleet_index: usize,
    vehicle: NodeId,
    shard_id: u32,
) -> RunOutcome {
    let (sub, mapping) = scenario.with_vehicle_subset(&[vehicle]);
    let sub_cfg = RunConfig {
        vifi: cfg.vifi.clone(),
        workload: cfg.workload.clone(),
        fleet_workloads: if cfg.fleet_workloads.is_empty() {
            Vec::new()
        } else {
            vec![cfg.fleet_workloads[fleet_index % cfg.fleet_workloads.len()].clone()]
        },
        duration: cfg.duration,
        seed: micro_shard_seed(cfg.seed, fleet_index, vehicle),
        mac: cfg.mac,
        backplane: cfg.backplane,
        wired_delay: cfg.wired_delay,
        shards: 1,
    };
    let mut out = Simulation::deployment_shard(&sub, sub_cfg, shard_id).run();
    // Map sub-scenario ids back to the parent's (identity whenever the
    // scenario lists basestations before vehicles, but never assumed).
    let back: HashMap<NodeId, NodeId> = mapping.into_iter().map(|(old, new)| (new, old)).collect();
    let remap = |n: NodeId| *back.get(&n).unwrap_or(&n);
    out.log.remap_nodes(remap);
    for v in &mut out.vehicles {
        v.vehicle = remap(v.vehicle);
    }
    out
}

/// Deterministically merge per-vehicle micro-shard outcomes (paired with
/// their fleet index) into one [`RunOutcome`]: vehicles in fleet order,
/// counters summed, the packet log and primary report taken from the
/// first vehicle — the same shape a sequential fleet run produces.
fn merge_shard_outcomes(mut parts: Vec<(usize, RunOutcome)>) -> RunOutcome {
    assert!(!parts.is_empty(), "sharded run produced no outcomes");
    parts.sort_by_key(|&(fleet_index, _)| fleet_index);
    assert_eq!(parts[0].0, 0, "fleet index 0 must be present");
    let mut vehicles = Vec::with_capacity(parts.len());
    let mut unroutable_down = 0;
    let mut salvaged = 0;
    let mut events = 0;
    let mut frames_tx = 0;
    let mut log = None;
    for (fleet_index, part) in parts {
        debug_assert_eq!(part.vehicles.len(), 1, "micro-shards host one vehicle");
        unroutable_down += part.unroutable_down;
        salvaged += part.salvaged;
        events += part.events;
        frames_tx += part.frames_tx;
        if fleet_index == 0 {
            log = Some(part.log);
        }
        vehicles.extend(part.vehicles);
    }
    RunOutcome {
        report: vehicles[0].report.clone(),
        anchor_switches: vehicles[0].anchor_switches,
        unroutable_down,
        vehicles,
        salvaged,
        events,
        frames_tx,
        log: log.expect("fleet index 0 carries the packet log"),
    }
}

impl Simulation {
    /// Run `(scenario, cfg)` sharded across up to [`RunConfig::shards`]
    /// worker threads and return the merged outcome. `shards <= 1` is the
    /// sequential fully-coupled [`Simulation::run`], unchanged; see the
    /// module docs for the `shards >= 2` decomposition semantics and the
    /// bit-identity guarantees the equivalence suite enforces.
    pub fn run_sharded(scenario: &Scenario, cfg: RunConfig) -> RunOutcome {
        Self::run_sharded_timed(scenario, cfg).0
    }

    /// [`Simulation::run_sharded`], also returning per-shard wall-clock
    /// accounting (one [`ShardTiming`] per non-empty shard; a single
    /// entry for the sequential `shards <= 1` path). Worker threads are
    /// capped at the host's available parallelism — extra shards queue on
    /// the workers rather than oversubscribing cores, so each shard's
    /// wall-clock measures its own work, not its neighbours' timeslices.
    pub fn run_sharded_timed(
        scenario: &Scenario,
        cfg: RunConfig,
    ) -> (RunOutcome, Vec<ShardTiming>) {
        let shards = resolve_shards(cfg.shards);
        if shards <= 1 {
            let instrumented = if cfg.fleet_workloads.is_empty() {
                1
            } else {
                scenario.vehicle_ids().len()
            };
            let start = Instant::now();
            let out = Simulation::deployment(scenario, cfg).run();
            let timing = vec![ShardTiming {
                shard_id: 0,
                vehicles: instrumented,
                wall: start.elapsed(),
            }];
            return (out, timing);
        }
        let plan = plan_shards(scenario, &cfg);
        let busy: Vec<&ShardAssignment> = plan
            .assignments
            .iter()
            .filter(|a| !a.vehicles.is_empty())
            .collect();
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(busy.len())
            .max(1);
        let cfg = &cfg;
        let mut merged: Vec<(usize, RunOutcome)> = Vec::new();
        let mut timings: Vec<ShardTiming> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let busy = &busy;
                    s.spawn(move || {
                        let mut parts: Vec<(usize, RunOutcome)> = Vec::new();
                        let mut timings: Vec<ShardTiming> = Vec::new();
                        let mut i = w;
                        while i < busy.len() {
                            let a = busy[i];
                            let start = Instant::now();
                            for &(fleet_index, vehicle) in &a.vehicles {
                                parts.push((
                                    fleet_index,
                                    run_micro_shard(
                                        scenario,
                                        cfg,
                                        fleet_index,
                                        vehicle,
                                        a.shard_id,
                                    ),
                                ));
                            }
                            timings.push(ShardTiming {
                                shard_id: a.shard_id,
                                vehicles: a.vehicles.len(),
                                wall: start.elapsed(),
                            });
                            i += workers;
                        }
                        (parts, timings)
                    })
                })
                .collect();
            for h in handles {
                let (parts, t) = h.join().expect("shard worker panicked");
                merged.extend(parts);
                timings.extend(t);
            }
        });
        timings.sort_by_key(|t| t.shard_id);
        (merge_shard_outcomes(merged), timings)
    }

    /// The sequential reference path of the sharded semantics: execute
    /// the same per-vehicle decomposition as `shards >= 2`, inline on the
    /// calling thread, in fleet order. `run_sharded` with any shard count
    /// `>= 2` is bit-identical to this — the equivalence suite pins the
    /// parallel executor against it.
    pub fn run_sharded_sequential(scenario: &Scenario, cfg: RunConfig) -> RunOutcome {
        let plan = plan_shards(
            scenario,
            &RunConfig {
                shards: 1,
                ..cfg.clone()
            },
        );
        let parts: Vec<(usize, RunOutcome)> = plan.assignments[0]
            .vehicles
            .iter()
            .map(|&(fleet_index, vehicle)| {
                (
                    fleet_index,
                    run_micro_shard(scenario, &cfg, fleet_index, vehicle, 0),
                )
            })
            .collect();
        merge_shard_outcomes(parts)
    }
}

impl Fingerprintable for VehicleOutcome {
    fn fingerprint_into(&self, fp: &mut Fingerprint) {
        fp.push_u64(self.vehicle.label());
        self.report.fingerprint_into(fp);
        fp.push_u64(self.anchor_switches);
        fp.push_u64(self.unroutable_down);
    }
}

impl Fingerprintable for RunOutcome {
    fn fingerprint_into(&self, fp: &mut Fingerprint) {
        self.report.fingerprint_into(fp);
        fp.push_len(self.vehicles.len());
        for v in &self.vehicles {
            v.fingerprint_into(fp);
        }
        self.log.fingerprint_into(fp);
        fp.push_u64(self.anchor_switches);
        fp.push_u64(self.salvaged);
        fp.push_u64(self.unroutable_down);
        fp.push_u64(self.events);
        fp.push_u64(self.frames_tx);
    }
}

impl RunOutcome {
    /// Canonical digest of every observable field of this outcome (probe
    /// outcomes, delays, log records, counters; floats by bit pattern).
    /// Two outcomes with equal fingerprints are bit-identical for every
    /// purpose the evaluation reads — this is the equality the
    /// shard-equivalence suite asserts.
    pub fn fingerprint(&self) -> u64 {
        Fingerprintable::fingerprint(self)
    }
}

/// Kind of a node in this simulation (diagnostic helper).
pub fn node_kind_name(kind: NodeKind) -> &'static str {
    match kind {
        NodeKind::Vehicle => "vehicle",
        NodeKind::Basestation => "basestation",
        NodeKind::Wired => "wired",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vifi_sim::SimDuration;
    use vifi_testbeds::{dieselnet_ch1, generate_beacon_trace, vanlan};

    fn quick_cfg(workload: WorkloadSpec, secs: u64, seed: u64) -> RunConfig {
        RunConfig {
            workload,
            duration: SimDuration::from_secs(secs),
            seed,
            ..RunConfig::default()
        }
    }

    #[test]
    fn idle_run_beacons_flow() {
        let s = vanlan(1);
        let sim = Simulation::deployment(&s, quick_cfg(WorkloadSpec::Idle, 20, 1));
        let out = sim.run();
        assert!(out.events > 100, "events {}", out.events);
        assert!(out.frames_tx > 100, "beacons on the air: {}", out.frames_tx);
        assert!(matches!(out.report, WorkloadReport::Idle));
    }

    #[test]
    fn cbr_run_delivers_probes() {
        let s = vanlan(1);
        let sim = Simulation::deployment(&s, quick_cfg(WorkloadSpec::paper_cbr(), 120, 2));
        let out = sim.run();
        let stats = match out.report {
            WorkloadReport::Cbr(c) => c,
            other => panic!("wrong report {other:?}"),
        };
        // 120 s at 10 Hz each way (the tick at exactly t = 120 s also
        // fires, hence the +1).
        assert!(
            (1200..=1201).contains(&stats.up.len()),
            "{}",
            stats.up.len()
        );
        assert!(
            (1200..=1201).contains(&stats.down.len()),
            "{}",
            stats.down.len()
        );
        // The van drives through campus in the first two minutes: a good
        // chunk of probes must get through.
        let delivered = stats.total_delivered();
        assert!(delivered > 200, "delivered {delivered}");
        assert!(delivered < 2400, "not everything is reachable");
    }

    #[test]
    fn deterministic_replay() {
        let s = vanlan(1);
        let run = |seed| {
            let sim = Simulation::deployment(&s, quick_cfg(WorkloadSpec::paper_cbr(), 60, seed));
            let out = sim.run();
            match out.report {
                WorkloadReport::Cbr(c) => (c.total_delivered(), out.events, out.frames_tx),
                _ => unreachable!(),
            }
        };
        assert_eq!(run(7), run(7), "same seed, same run");
        assert_ne!(run(7), run(8), "different seed, different run");
    }

    #[test]
    fn vifi_beats_brr_on_cbr_delivery() {
        let s = vanlan(1);
        let run = |vifi: VifiConfig| {
            let cfg = RunConfig {
                vifi,
                ..quick_cfg(WorkloadSpec::paper_cbr(), 180, 3)
            };
            let out = Simulation::deployment(&s, cfg).run();
            match out.report {
                WorkloadReport::Cbr(c) => c.total_delivered(),
                _ => unreachable!(),
            }
        };
        let vifi = run(VifiConfig::default().without_retx());
        let brr = run(VifiConfig::brr_baseline().without_retx());
        assert!(
            vifi > brr,
            "diversity must deliver more: ViFi {vifi} vs BRR {brr}"
        );
    }

    #[test]
    fn relaying_happens_and_is_logged() {
        let s = vanlan(1);
        let out = Simulation::deployment(&s, quick_cfg(WorkloadSpec::paper_cbr(), 180, 4)).run();
        let relays: usize = out.log.records.iter().map(|r| r.relays.len()).sum();
        assert!(relays > 0, "some packets must be relayed");
        let decisions: usize = out.log.records.iter().map(|r| r.decisions.len()).sum();
        assert!(decisions >= relays);
        // Upstream relays ride the backplane, downstream ones the air.
        let up_air = out
            .log
            .records
            .iter()
            .filter(|r| r.dir == Direction::Upstream)
            .flat_map(|r| r.relays.iter())
            .filter(|f| !f.via_backplane)
            .count();
        assert_eq!(up_air, 0, "upstream relays never use the air");
    }

    #[test]
    fn anchor_switches_under_mobility() {
        let s = vanlan(1);
        let out = Simulation::deployment(&s, quick_cfg(WorkloadSpec::Idle, 200, 5)).run();
        assert!(
            out.anchor_switches >= 1,
            "driving across campus must switch anchors"
        );
    }

    #[test]
    fn trace_driven_mode_runs() {
        let s = dieselnet_ch1();
        let veh = s.vehicle_ids()[0];
        let trace = generate_beacon_trace(&s, veh, SimDuration::from_secs(150), 10, &Rng::new(6));
        let out =
            Simulation::trace_driven(&trace, quick_cfg(WorkloadSpec::paper_cbr(), 150, 6)).run();
        let stats = match out.report {
            WorkloadReport::Cbr(c) => c,
            _ => unreachable!(),
        };
        assert!(stats.total_delivered() > 50, "{}", stats.total_delivered());
    }

    #[test]
    fn tcp_workload_completes_transfers() {
        let s = vanlan(1);
        let out = Simulation::deployment(&s, quick_cfg(WorkloadSpec::paper_tcp(), 180, 7)).run();
        let stats = match out.report {
            WorkloadReport::Tcp(t) => t,
            _ => unreachable!(),
        };
        let total = stats.down.transfer_times.len() + stats.up.transfer_times.len();
        assert!(total > 3, "completed transfers {total}");
    }

    #[test]
    fn voip_workload_scores() {
        let s = vanlan(1);
        let cfg = RunConfig {
            wired_delay: SimDuration::ZERO, // the scorer adds the fixed 40 ms
            ..quick_cfg(WorkloadSpec::Voip, 120, 8)
        };
        let out = Simulation::deployment(&s, cfg).run();
        let stats = match out.report {
            WorkloadReport::Voip(v) => v,
            _ => unreachable!(),
        };
        assert!(!stats.down.scores.is_empty());
        // While on campus some windows must be decent.
        assert!(
            stats.down.scores.iter().any(|w| w.mos > 3.0),
            "some good windows expected"
        );
    }

    #[test]
    fn efficiency_ledgers_populate() {
        let s = vanlan(1);
        let out = Simulation::deployment(&s, quick_cfg(WorkloadSpec::paper_cbr(), 120, 9)).run();
        assert!(out.log.ledger_up.wireless_tx > 0);
        assert!(out.log.ledger_down.wireless_tx > 0);
        let eff_up = out.log.ledger_up.efficiency();
        let eff_down = out.log.ledger_down.efficiency();
        assert!(eff_up > 0.0 && eff_up <= 1.0, "up {eff_up}");
        assert!(eff_down > 0.0 && eff_down <= 1.0, "down {eff_down}");
    }

    #[test]
    fn fleet_runs_give_every_vehicle_a_workload() {
        let s = vanlan(3);
        let cfg = RunConfig {
            fleet_workloads: vec![WorkloadSpec::paper_cbr()],
            ..quick_cfg(WorkloadSpec::Idle, 60, 11)
        };
        let out = Simulation::deployment(&s, cfg).run();
        assert_eq!(out.vehicles.len(), 3);
        let mut carrying = 0;
        for v in &out.vehicles {
            let c = match &v.report {
                WorkloadReport::Cbr(c) => c,
                other => panic!("every van runs CBR, got {other:?}"),
            };
            assert!(c.total_sent() > 500, "sent {}", c.total_sent());
            if c.total_delivered() > 0 {
                carrying += 1;
            }
        }
        // The vans are phase-spread: not all are in coverage during the
        // first minute, but at least one must deliver.
        assert!(carrying >= 1);
        // The primary report mirrors vehicles[0].
        assert_eq!(
            out.report.as_cbr().unwrap().total_delivered(),
            out.vehicles[0].report.as_cbr().unwrap().total_delivered()
        );
    }

    #[test]
    fn fleet_workloads_cycle_across_vehicles() {
        let s = vanlan(2);
        let cfg = RunConfig {
            fleet_workloads: vec![WorkloadSpec::paper_cbr(), WorkloadSpec::Idle],
            ..quick_cfg(WorkloadSpec::Idle, 30, 12)
        };
        let out = Simulation::deployment(&s, cfg).run();
        assert!(matches!(out.vehicles[0].report, WorkloadReport::Cbr(_)));
        assert!(matches!(out.vehicles[1].report, WorkloadReport::Idle));
    }

    #[test]
    fn fleet_mode_is_deterministic() {
        let s = vanlan(2);
        let run = |seed| {
            let cfg = RunConfig {
                fleet_workloads: vec![WorkloadSpec::paper_cbr()],
                ..quick_cfg(WorkloadSpec::Idle, 60, seed)
            };
            let out = Simulation::deployment(&s, cfg).run();
            let per: Vec<u64> = out
                .vehicles
                .iter()
                .map(|v| v.report.as_cbr().unwrap().total_delivered())
                .collect();
            (per, out.events, out.frames_tx)
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn default_mode_instruments_only_first_vehicle() {
        // Without fleet_workloads a multi-vehicle scenario behaves as
        // before: one workload host, background vans only beacon.
        let s = vanlan(2);
        let out = Simulation::deployment(&s, quick_cfg(WorkloadSpec::paper_cbr(), 30, 13)).run();
        assert_eq!(out.vehicles.len(), 1);
        assert_eq!(out.vehicles[0].vehicle, s.vehicle_ids()[0]);
        assert!(matches!(out.report, WorkloadReport::Cbr(_)));
    }

    #[test]
    fn fleet_aggregate_cbr_sums_vehicles() {
        let s = vanlan(2);
        let cfg = RunConfig {
            fleet_workloads: vec![WorkloadSpec::paper_cbr()],
            ..quick_cfg(WorkloadSpec::Idle, 40, 14)
        };
        let out = Simulation::deployment(&s, cfg).run();
        let agg = crate::workload::aggregate_cbr(out.vehicles.iter().map(|v| &v.report));
        let sum_sent: u64 = out
            .vehicles
            .iter()
            .map(|v| v.report.as_cbr().unwrap().total_sent())
            .sum();
        assert_eq!(agg.total_sent(), sum_sent);
    }

    #[test]
    fn shard_plan_partitions_instrumented_vehicles() {
        let s = vanlan(1);
        // Non-fleet mode: one micro-shard (the instrumented vehicle).
        let cfg = quick_cfg(WorkloadSpec::paper_cbr(), 10, 1);
        let plan = plan_shards(&s, &RunConfig { shards: 4, ..cfg });
        assert_eq!(plan.assignments.len(), 4);
        assert_eq!(plan.vehicles(), 1);
        assert_eq!(plan.assignments[0].vehicles, vec![(0, s.vehicle_ids()[0])]);
        // Fleet mode: every vehicle, round-robin.
        let s = vanlan(5);
        let cfg = RunConfig {
            fleet_workloads: vec![WorkloadSpec::paper_cbr()],
            shards: 2,
            ..quick_cfg(WorkloadSpec::Idle, 10, 1)
        };
        let plan = plan_shards(&s, &cfg);
        assert_eq!(plan.vehicles(), 5);
        let vs = s.vehicle_ids();
        assert_eq!(
            plan.assignments[0].vehicles,
            vec![(0, vs[0]), (2, vs[2]), (4, vs[4])]
        );
        assert_eq!(plan.assignments[1].vehicles, vec![(1, vs[1]), (3, vs[3])]);
    }

    #[test]
    fn single_vehicle_sharded_is_bit_identical_to_sequential() {
        // The paper's setup (one instrumented vehicle) under any shard
        // count replays the sequential run exactly: the sub-scenario is
        // the scenario and micro-shard 0 keeps the run seed.
        let s = vanlan(1);
        let cfg = quick_cfg(WorkloadSpec::paper_cbr(), 40, 9);
        let sequential = Simulation::deployment(&s, cfg.clone()).run();
        for shards in [2usize, 3] {
            let sharded = Simulation::run_sharded(
                &s,
                RunConfig {
                    shards,
                    ..cfg.clone()
                },
            );
            assert_eq!(
                sharded.fingerprint(),
                sequential.fingerprint(),
                "shards={shards}"
            );
        }
    }

    #[test]
    fn sharded_fleet_merges_in_vehicle_order() {
        let s = vanlan(3);
        let cfg = RunConfig {
            fleet_workloads: vec![WorkloadSpec::paper_cbr()],
            shards: 2,
            ..quick_cfg(WorkloadSpec::Idle, 30, 4)
        };
        let (out, timings) = Simulation::run_sharded_timed(&s, cfg);
        assert_eq!(out.vehicles.len(), 3);
        let ids: Vec<NodeId> = out.vehicles.iter().map(|v| v.vehicle).collect();
        assert_eq!(ids, s.vehicle_ids(), "merged outcomes in vehicle order");
        // The primary report and switch counter mirror vehicle 0, counters
        // sum across shards.
        assert_eq!(
            out.report.as_cbr().unwrap().total_delivered(),
            out.vehicles[0].report.as_cbr().unwrap().total_delivered()
        );
        assert_eq!(out.anchor_switches, out.vehicles[0].anchor_switches);
        assert_eq!(
            out.unroutable_down,
            out.vehicles.iter().map(|v| v.unroutable_down).sum::<u64>()
        );
        // Two non-empty shards: 2 vehicles + 1 vehicle.
        assert_eq!(timings.len(), 2);
        assert_eq!(timings[0].vehicles + timings[1].vehicles, 3);
    }

    #[test]
    fn sharded_runs_are_invariant_to_shard_count() {
        let s = vanlan(4);
        let run = |shards| {
            let cfg = RunConfig {
                fleet_workloads: vec![WorkloadSpec::paper_cbr()],
                shards,
                ..quick_cfg(WorkloadSpec::Idle, 30, 6)
            };
            Simulation::run_sharded(&s, cfg).fingerprint()
        };
        let sequential_plan = Simulation::run_sharded_sequential(
            &s,
            RunConfig {
                fleet_workloads: vec![WorkloadSpec::paper_cbr()],
                ..quick_cfg(WorkloadSpec::Idle, 30, 6)
            },
        )
        .fingerprint();
        let two = run(2);
        assert_eq!(two, run(3));
        assert_eq!(two, run(8), "more shards than vehicles");
        assert_eq!(two, sequential_plan, "parallel == sequential plan");
    }

    #[test]
    fn salvaging_counts_with_tcp() {
        let s = vanlan(1);
        // Long enough to cross anchor changes mid-transfer.
        let out = Simulation::deployment(&s, quick_cfg(WorkloadSpec::paper_tcp(), 400, 10)).run();
        // Salvage may legitimately be zero on some seeds, but switches
        // must happen; assert the machinery at least ran.
        assert!(out.anchor_switches > 0);
        let _ = out.salvaged; // smoke: field exists and is consistent
    }
}
