//! The full-stack discrete-event simulation.
//!
//! One [`Simulation`] = one experiment run: a link model (physical or
//! trace-driven), the CSMA medium, the backplane, a ViFi/BRR endpoint per
//! radio node, one or more vehicles carrying application workloads, and an
//! Internet host behind a wired hop. Determinism: everything derives from
//! `(RunConfig, seed)`.
//!
//! Since PR 5 every coupled run executes on the **epoch-synchronized
//! engine** (`crate::engine`): nodes are grouped into shards, each shard
//! dispatches its own nodes' events, and all inter-node effects — frame
//! placement and reception, backplane messages, wired hops, packet-log
//! writes — cross at epoch barriers in canonically sorted batches. The
//! engine is the *same machine at every shard count*: `shards = 1` (the
//! default, and [`Simulation::run`]) is one shard on the calling thread,
//! and [`ShardMode::Coupled`] splits the same run across worker threads
//! with bit-identical results. Epoch boundaries come from an
//! [`vifi_sim::EpochSchedule`] whose lookahead is derived from
//! [`Scenario::contact_windows`]-style activity analysis plus the beacon
//! period: while the whole fleet is out of radio contact, shards run free
//! on a stretched quantum.
//!
//! ## Fleet runs
//!
//! By default only the first vehicle carries [`RunConfig::workload`] (the
//! paper's single instrumented vehicle); any further vehicles in the
//! scenario run the protocol as background channel occupants. Setting
//! [`RunConfig::fleet_workloads`] gives *every* vehicle its own workload
//! driver (vehicle *i* takes entry `i % len`), each with its own RNG
//! stream and its own wired path to the Internet host. The detailed
//! packet-level [`RunLog`] still follows the first vehicle's flows only —
//! it feeds the paper's per-packet tables — while per-vehicle outcomes
//! come back in [`RunOutcome::vehicles`].
//!
//! ## Sharded runs
//!
//! A single large fleet run can be sharded across cores with
//! [`RunConfig::shards`] + [`RunConfig::shard_mode`] and
//! [`Simulation::run_sharded`]. Two modes:
//!
//! * [`ShardMode::Independent`] (PR 4's decomposition, the default): each
//!   instrumented vehicle is simulated in its own sub-run against the
//!   full basestation infrastructure, keyed by `(run_seed, vehicle)`;
//!   outcomes merge deterministically and are invariant to the shard
//!   count — but cross-vehicle channel contention and background
//!   occupants are dropped. Fast, embarrassingly parallel, and only valid
//!   when contention between fleet members is not the thing measured.
//! * [`ShardMode::Coupled`]: the epoch engine splits the *one* coupled
//!   run across shards — vehicles partitioned by contact load
//!   ([`Scenario::shard_partition_by_contact`]), basestations by
//!   contact-seconds ([`Scenario::bs_contact_seconds`]) — and the merged
//!   [`RunOutcome`] is **bit-identical to the sequential `shards = 1`
//!   run** at every shard and worker count (`tests/shard_equivalence.rs`
//!   enforces it). Slower per event than Independent, but the numbers
//!   keep the paper's full contention physics.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use vifi_core::VifiConfig;
use vifi_faults::{ChannelOverrides, FaultPlan};
use vifi_mac::{BackplaneParams, MacParams};
use vifi_phy::{NodeId, NodeKind, PhysicalLinkModel};
use vifi_sim::{EpochSchedule, HierarchicalSchedule, Rng, SimDuration};
use vifi_testbeds::trace::TraceSimSetup;
use vifi_testbeds::{BeaconTrace, Scenario};

use crate::engine::{self, CoupledTiming, EnginePartition, EngineSetup};
use crate::fingerprint::{Fingerprint, Fingerprintable};
use crate::logging::RunLog;
use crate::workload::{WorkloadReport, WorkloadSpec};

/// How [`Simulation::run_sharded`] decomposes a run when
/// [`RunConfig::shards`] is at least 2. See the module docs for the
/// semantics of each mode; `shards = 1` ignores the mode and runs the
/// sequential coupled loop.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ShardMode {
    /// Per-vehicle sub-runs against replicated infrastructure; drops
    /// cross-vehicle contention (PR 4 semantics, the historical default).
    #[default]
    Independent,
    /// One coupled run on the epoch-synchronized engine; preserves the
    /// shared medium and is bit-identical to `shards = 1`.
    Coupled,
}

/// Experiment configuration.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Protocol configuration (ViFi / BRR / ablations).
    pub vifi: VifiConfig,
    /// Application workload of the instrumented (first) vehicle.
    pub workload: WorkloadSpec,
    /// Fleet mode: when non-empty, every vehicle in the scenario gets its
    /// own workload driver — vehicle `i` (scenario order) takes entry
    /// `i % fleet_workloads.len()`, and `workload` is ignored. Empty
    /// (default) preserves the paper's setup: one instrumented vehicle,
    /// any others idle.
    pub fleet_workloads: Vec<WorkloadSpec>,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Run seed.
    pub seed: u64,
    /// MAC parameters.
    pub mac: MacParams,
    /// Backplane parameters.
    pub backplane: BackplaneParams,
    /// One-way wired delay between the anchor and the Internet host.
    /// Note: VoIP runs should keep this 0 — the VoIP scorer adds the
    /// paper's fixed 40 ms wired budget itself (§5.3.2).
    pub wired_delay: SimDuration,
    /// Execution sharding for [`Simulation::run_sharded`]. `1` (the
    /// default) is the sequential coupled run — `run_sharded` and
    /// [`Simulation::run`] are then the same path. `>= 2` decomposes the
    /// run per [`RunConfig::shard_mode`] (`0` = one shard per available
    /// core, floored at two so the choice of semantics never depends on
    /// the host). Ignored by plain [`Simulation::run`].
    pub shards: usize,
    /// Decomposition semantics when `shards >= 2`; see [`ShardMode`].
    pub shard_mode: ShardMode,
    /// Seeded fault schedule (basestation crashes, beacon suppression,
    /// backplane partitions/spikes, wired outages). Empty (the default)
    /// means an unfaulted run — bit-identical to a config predating the
    /// field. Fault events are applied at canonical points of the epoch
    /// engine, so a faulted outcome is invariant to [`ShardMode`], shard
    /// count and worker count exactly like an unfaulted one.
    pub faults: FaultPlan,
    /// Scenario-level channel-process overrides (gray-period and
    /// Gilbert–Elliott parameters). `None`s (the default) keep the radio
    /// profile's own parameters.
    pub channel: ChannelOverrides,
    /// Force the flat (single-level) epoch schedule even when the
    /// scenario's contact graph decomposes into multiple clusters
    /// ([`Scenario::contact_clusters`]). By default (`false`) a coupled
    /// run on a multi-cluster scenario synchronizes hierarchically:
    /// fine barriers stay within each cluster, the whole fleet
    /// rendezvouses only at coarse boundaries where backplane coupling
    /// resolves. Each mode is deterministic and bit-identical across
    /// shard and worker counts, but the two are distinct models: nested
    /// runs delay backplane and wired coupling to the next coarse
    /// boundary (up to one coarse quantum), flat runs route it every
    /// fine epoch. This knob exists for A/B measurement (`fleet_sweep`)
    /// and as an escape hatch.
    pub flat_epochs: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            vifi: VifiConfig::default(),
            workload: WorkloadSpec::Idle,
            fleet_workloads: Vec::new(),
            duration: SimDuration::from_secs(60),
            seed: 1,
            mac: MacParams::default(),
            backplane: BackplaneParams::default(),
            wired_delay: SimDuration::from_millis(10),
            shards: 1,
            shard_mode: ShardMode::Independent,
            faults: FaultPlan::default(),
            channel: ChannelOverrides::default(),
            flat_epochs: false,
        }
    }
}

/// Per-vehicle results of a (fleet) run — one entry per workload-carrying
/// vehicle, in scenario order.
#[derive(Clone, Debug)]
pub struct VehicleOutcome {
    /// The vehicle's node id.
    pub vehicle: NodeId,
    /// Its workload-level report.
    pub report: WorkloadReport,
    /// Anchor switches this vehicle performed.
    pub anchor_switches: u64,
    /// Downstream packets for this vehicle dropped for lack of an anchor.
    pub unroutable_down: u64,
}

/// Results of one run.
pub struct RunOutcome {
    /// Workload-level report of the instrumented (first) vehicle.
    pub report: WorkloadReport,
    /// Per-vehicle outcomes: one entry per workload-carrying vehicle (just
    /// the instrumented vehicle by default; all of them in fleet mode).
    pub vehicles: Vec<VehicleOutcome>,
    /// Packet-level log of the instrumented vehicle's flows (Tables 1/2,
    /// Fig. 12, PerfectRelay).
    pub log: RunLog,
    /// Anchor switches observed at the instrumented vehicle.
    pub anchor_switches: u64,
    /// Packets recovered through salvage at new anchors (all vehicles).
    pub salvaged: u64,
    /// Downstream app packets dropped because their vehicle had no anchor.
    pub unroutable_down: u64,
    /// Total events dispatched (performance accounting).
    pub events: u64,
    /// Total wireless frames transmitted.
    pub frames_tx: u64,
    /// Degradation observability: what the fault schedule actually did to
    /// this run (all-zero for unfaulted runs).
    pub faults: FaultStats,
}

/// Observability counters for fault injection and graceful degradation —
/// how often the [`RunConfig::faults`] schedule bit, and how the stack
/// absorbed it. Part of the outcome fingerprint, so the equivalence suite
/// pins fault behaviour across shard/worker counts too.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Basestations restarted at the end of a crash window.
    pub bs_restarts: u64,
    /// Beacons skipped because the sender was down or suppressed.
    pub beacons_suppressed: u64,
    /// Wireless receptions voided because the receiver was down.
    pub rx_dropped_down: u64,
    /// Backplane deliveries voided because an endpoint was down.
    pub backplane_dropped_down: u64,
    /// Backplane messages dropped after exhausting retries in a partition.
    pub bp_partition_drops: u64,
    /// Backplane messages lost to a latency/loss spike.
    pub bp_spike_drops: u64,
    /// Backplane retransmissions scheduled by the bounded-retry machinery.
    pub bp_retries: u64,
    /// Wired-path packets dropped during a wired outage.
    pub wired_drops: u64,
    /// Anchors evicted by the vehicle-side blacklist.
    pub blacklist_evictions: u64,
}

impl FaultStats {
    /// Accumulate another shard's (or run's) counters into this one.
    pub fn absorb(&mut self, other: &FaultStats) {
        self.bs_restarts += other.bs_restarts;
        self.beacons_suppressed += other.beacons_suppressed;
        self.rx_dropped_down += other.rx_dropped_down;
        self.backplane_dropped_down += other.backplane_dropped_down;
        self.bp_partition_drops += other.bp_partition_drops;
        self.bp_spike_drops += other.bp_spike_drops;
        self.bp_retries += other.bp_retries;
        self.wired_drops += other.wired_drops;
        self.blacklist_evictions += other.blacklist_evictions;
    }

    /// Total backplane messages lost to injected faults.
    pub fn bp_drops(&self) -> u64 {
        self.bp_partition_drops + self.bp_spike_drops
    }
}

impl Fingerprintable for FaultStats {
    fn fingerprint_into(&self, fp: &mut Fingerprint) {
        fp.push_u64(self.bs_restarts);
        fp.push_u64(self.beacons_suppressed);
        fp.push_u64(self.rx_dropped_down);
        fp.push_u64(self.backplane_dropped_down);
        fp.push_u64(self.bp_partition_drops);
        fp.push_u64(self.bp_spike_drops);
        fp.push_u64(self.bp_retries);
        fp.push_u64(self.wired_drops);
        fp.push_u64(self.blacklist_evictions);
    }
}

/// The engine's sync quantum while any vehicle is (or may soon be) in
/// radio contact: the bound on how much later than requested a frame can
/// start airing.
const SYNC_QUANTUM: SimDuration = SimDuration::from_millis(1);

/// The stretched quantum while the whole fleet is out of contact (shards
/// "run free": nothing they queue can reach another node sooner anyway).
const QUIET_QUANTUM: SimDuration = SimDuration::from_millis(50);

/// What a `Simulation` simulates.
enum SimKind {
    /// Deployment mode: a scenario drives the physical channel.
    Deployment { scenario: Scenario },
    /// Trace-driven mode (§5.1): a beacon trace supplies the channel.
    Trace { trace: BeaconTrace },
}

/// The assembled simulation: configuration plus the channel source. The
/// actual state machine lives in `crate::engine`; `run` instantiates it
/// with a single shard.
pub struct Simulation {
    cfg: RunConfig,
    kind: SimKind,
    base_shard_id: u32,
}

impl Simulation {
    /// Deployment mode: build from a scenario (physical channel). The
    /// first vehicle is instrumented; any further vehicles run the
    /// protocol (beacons, anchoring) as background occupants of the
    /// channel.
    pub fn deployment(scenario: &Scenario, cfg: RunConfig) -> Self {
        Self::deployment_shard(scenario, cfg, 0)
    }

    /// Deployment mode under a specific scheduler shard id (Independent
    /// sub-runs tag their event queues so timer tokens are distinct
    /// across shards; the id itself never changes simulation results).
    fn deployment_shard(scenario: &Scenario, cfg: RunConfig, shard: u32) -> Self {
        scenario.validate();
        Simulation {
            cfg,
            kind: SimKind::Deployment {
                scenario: scenario.clone(),
            },
            base_shard_id: shard,
        }
    }

    /// Trace-driven mode (§5.1): build from a beacon trace.
    pub fn trace_driven(trace: &BeaconTrace, cfg: RunConfig) -> Self {
        Simulation {
            cfg,
            kind: SimKind::Trace {
                trace: trace.clone(),
            },
            base_shard_id: 0,
        }
    }

    /// Margin (seconds) the activity analysis dilates contact by: one
    /// second of intra-second motion plus at least one beacon period of
    /// staleness.
    fn activity_margin_s(cfg: &RunConfig) -> u64 {
        1 + cfg.vifi.beacon_period.as_secs().max(1)
    }

    /// Build the engine inputs for this simulation under `partition`.
    fn engine_setup(&self, partition: EnginePartition, workers: usize) -> EngineSetup {
        let cfg = self.cfg.clone();
        let horizon_s = cfg.duration.as_secs() + 1;
        let margin = Self::activity_margin_s(&cfg);
        let channel = cfg.channel;
        match &self.kind {
            SimKind::Deployment { scenario } => {
                let probe = scenario.build_link_model(&Rng::new(cfg.seed));
                let active = scenario.active_seconds(&probe, horizon_s, margin);
                let schedule = EpochSchedule::new(SYNC_QUANTUM, QUIET_QUANTUM, active);
                // Multi-cluster scenarios synchronize hierarchically: a
                // per-cluster fine schedule derived from the cluster's
                // own contact activity, coarse rendezvous fleet-wide.
                // The decomposition is a pure function of the scenario,
                // so the sequential run takes the same nested path as
                // every sharded run — bit-identity is by construction,
                // not by accident.
                let decomposition = scenario.contact_clusters(&probe);
                let nested =
                    !cfg.flat_epochs && decomposition.len() >= 2 && decomposition.len() <= 64;
                let (hierarchy, clusters) = if nested {
                    let actives = decomposition
                        .iter()
                        .map(|c| scenario.cluster_active_seconds(&probe, horizon_s, margin, c))
                        .collect();
                    (
                        Some(HierarchicalSchedule::new(
                            SYNC_QUANTUM,
                            QUIET_QUANTUM,
                            actives,
                        )),
                        decomposition,
                    )
                } else {
                    (None, Vec::new())
                };
                let scenario = scenario.clone();
                let seed = cfg.seed;
                EngineSetup {
                    vehicles: scenario.vehicle_ids(),
                    bs_ids: scenario.bs_ids(),
                    link_factory: Box::new(move || {
                        let mut link = scenario.build_link_model(&Rng::new(seed));
                        if let Some(g) = channel.gray {
                            link = link.with_gray_params(g);
                        }
                        if let Some(ge) = channel.ge {
                            link = link.with_ge_params(ge);
                        }
                        Box::new(link)
                    }),
                    schedule,
                    hierarchy,
                    clusters,
                    partition,
                    base_shard_id: self.base_shard_id,
                    workers,
                    cfg,
                }
            }
            SimKind::Trace { trace } => {
                // Activity from the trace itself: seconds where at least
                // one BS was audible, dilated by the margin.
                let mut active: Vec<(u64, u64)> = Vec::new();
                for (sec, n) in trace.visible_per_second(0.0).iter().enumerate() {
                    if *n == 0 {
                        continue;
                    }
                    let lo = (sec as u64).saturating_sub(margin);
                    let hi = sec as u64 + margin + 1;
                    match active.last_mut() {
                        Some(last) if lo <= last.1 => last.1 = last.1.max(hi),
                        _ => active.push((lo, hi)),
                    }
                }
                let schedule = EpochSchedule::new(SYNC_QUANTUM, QUIET_QUANTUM, active);
                let probe = TraceSimSetup::from_trace(trace, &Rng::new(cfg.seed));
                let trace = trace.clone();
                let seed = cfg.seed;
                EngineSetup {
                    vehicles: vec![probe.vehicle],
                    bs_ids: probe.bs_ids.clone(),
                    link_factory: Box::new(move || {
                        let mut link = TraceSimSetup::from_trace(&trace, &Rng::new(seed)).link;
                        if let Some(ge) = channel.ge {
                            link = link.with_ge_params(ge);
                        }
                        Box::new(link)
                    }),
                    schedule,
                    hierarchy: None,
                    clusters: Vec::new(),
                    partition,
                    base_shard_id: self.base_shard_id,
                    workers,
                    cfg,
                }
            }
        }
    }

    /// All radio nodes of this simulation (vehicles + basestations).
    fn all_nodes(&self) -> Vec<NodeId> {
        match &self.kind {
            SimKind::Deployment { scenario } => {
                let mut v = scenario.vehicle_ids();
                v.extend(scenario.bs_ids());
                v
            }
            SimKind::Trace { trace } => {
                let probe = TraceSimSetup::from_trace(trace, &Rng::new(self.cfg.seed));
                let mut v = vec![probe.vehicle];
                v.extend(probe.bs_ids);
                v
            }
        }
    }

    /// Run to completion and produce the outcome: the epoch engine with a
    /// single shard on the calling thread — the sequential coupled run
    /// every sharded mode is measured against.
    pub fn run(self) -> RunOutcome {
        let partition = EnginePartition::single(self.all_nodes());
        let setup = self.engine_setup(partition, 1);
        engine::run(setup).0
    }
}

// ---------------------------------------------------------------------
// Sharded execution
// ---------------------------------------------------------------------

/// One shard of a sharded run: the disjoint node set it owns. For
/// [`ShardMode::Independent`] only `vehicles` is populated (each vehicle
/// becomes its own sub-run, `basestations` is empty because the
/// infrastructure is replicated); for [`ShardMode::Coupled`] the shard
/// owns its vehicles *and* an exclusive slice of the basestations.
#[derive(Clone, Debug)]
pub struct ShardAssignment {
    /// Shard identity (also stamped into the shard's timer tokens).
    pub shard_id: u32,
    /// `(fleet_index, vehicle)` pairs owned by this shard; `fleet_index`
    /// is the vehicle's position in [`Scenario::vehicle_ids`] order.
    pub vehicles: Vec<(usize, NodeId)>,
    /// Basestations owned by this shard (coupled mode only): every BS is
    /// owned by exactly one shard, balanced by contact-seconds.
    pub basestations: Vec<NodeId>,
}

/// The deterministic execution plan of a sharded run.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// One assignment per shard (trailing shards may be empty when the
    /// shard count exceeds the instrumented-vehicle count).
    pub assignments: Vec<ShardAssignment>,
}

impl ShardPlan {
    /// Total vehicles across all assignments.
    pub fn vehicles(&self) -> usize {
        self.assignments.iter().map(|a| a.vehicles.len()).sum()
    }
}

/// Wall-clock accounting of one shard of a sharded run: how long the
/// shard's work took on its worker. The maximum across shards is the
/// run's critical path — the wall-clock it needs when every shard has
/// its own core. (Coupled runs additionally spend serial coordinator
/// time at the barriers; [`Simulation::run_coupled_timed`] reports it.)
#[derive(Clone, Debug)]
pub struct ShardTiming {
    /// Which shard.
    pub shard_id: u32,
    /// How many vehicles the shard simulated.
    pub vehicles: usize,
    /// Wall-clock the shard spent simulating them.
    pub wall: Duration,
}

/// Resolve the configured shard count: `0` means one shard per available
/// core, floored at two so `0` always selects the *decomposed* execution
/// — were a single-core host to resolve to `1`, the same config would
/// pick a different code path on different machines.
fn resolve_shards(shards: usize) -> usize {
    if shards == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .max(2)
    } else {
        shards
    }
}

/// Build the deterministic shard plan for `(scenario, cfg)`.
///
/// [`ShardMode::Independent`]: the instrumented vehicles (every vehicle
/// in fleet mode, the first vehicle otherwise) partitioned round-robin by
/// [`Scenario::shard_partition`]; basestations are not assigned (each
/// sub-run replicates them).
///
/// [`ShardMode::Coupled`]: *all* vehicles (background occupants too — the
/// coupled engine simulates the whole scenario) partitioned by contact
/// load ([`Scenario::shard_partition_by_contact`]), plus every
/// basestation assigned to exactly one shard, heaviest-first by
/// [`Scenario::bs_contact_seconds`] onto the lightest shard. A pure
/// function of its inputs; and since the engine's outcome is invariant to
/// the partition, the assignment is purely a load-balancing choice.
///
/// On a multi-cluster scenario ([`Scenario::contact_clusters`], unless
/// [`RunConfig::flat_epochs`]) placement is cluster-first so the nested
/// barrier hierarchy pays off: whole clusters are placed onto shards
/// before load is LPT-balanced within them. With at least one shard per
/// cluster each cluster gets a contiguous, exclusive shard range (shard
/// counts proportional to cluster contact load, everyone at least one)
/// and its vehicles/basestations are balanced across that range alone;
/// with fewer shards than clusters, whole clusters go LPT onto shards so
/// no cluster straddles a shard boundary needlessly.
pub fn plan_shards(scenario: &Scenario, cfg: &RunConfig) -> ShardPlan {
    let shards = resolve_shards(cfg.shards).max(1);
    let fleet_index: HashMap<NodeId, usize> = scenario
        .vehicle_ids()
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, i))
        .collect();
    match cfg.shard_mode {
        ShardMode::Independent => {
            let groups: Vec<Vec<NodeId>> = if cfg.fleet_workloads.is_empty() {
                // Non-fleet mode instruments only the first vehicle; the
                // rest of the partition stays empty.
                let mut groups = vec![Vec::new(); shards];
                groups[0].push(scenario.vehicle_ids()[0]);
                groups
            } else {
                scenario.shard_partition(shards)
            };
            ShardPlan {
                assignments: groups
                    .into_iter()
                    .enumerate()
                    .map(|(s, vehicles)| ShardAssignment {
                        shard_id: s as u32,
                        vehicles: vehicles.into_iter().map(|v| (fleet_index[&v], v)).collect(),
                        basestations: Vec::new(),
                    })
                    .collect(),
            }
        }
        ShardMode::Coupled => {
            let link = scenario.build_link_model(&Rng::new(cfg.seed));
            let clusters = if cfg.flat_epochs {
                Vec::new()
            } else {
                scenario.contact_clusters(&link)
            };
            if clusters.len() >= 2 {
                return plan_coupled_clustered(scenario, &link, &clusters, shards, &fleet_index);
            }
            let vgroups = scenario.shard_partition_by_contact(shards, &link, 0.1);
            // Basestations: longest-processing-time by contact seconds.
            let mut weights = scenario.bs_contact_seconds(&link, 0.1);
            weights.sort_by_key(|&(bs, w)| (std::cmp::Reverse(w), bs));
            let mut bs_groups: Vec<Vec<NodeId>> = vec![Vec::new(); shards];
            let mut loads = vec![0u64; shards];
            for (bs, w) in weights {
                let lightest = (0..shards)
                    .min_by_key(|&s| (loads[s], s))
                    .expect(">=1 shard");
                loads[lightest] += w;
                bs_groups[lightest].push(bs);
            }
            ShardPlan {
                assignments: vgroups
                    .into_iter()
                    .zip(bs_groups)
                    .enumerate()
                    .map(|(s, (vehicles, basestations))| ShardAssignment {
                        shard_id: s as u32,
                        vehicles: vehicles.into_iter().map(|v| (fleet_index[&v], v)).collect(),
                        basestations,
                    })
                    .collect(),
            }
        }
    }
}

/// Cluster-first coupled placement for multi-cluster scenarios: decide
/// which shards host each cluster, then LPT-balance each cluster's load
/// across its own shards. Keeping every cluster on an exclusive shard
/// range (when shards allow) is what lets the nested barrier hierarchy
/// run clusters without stalling each other; the plan stays a pure
/// function of `(scenario, link, clusters, shards)` and — like every
/// coupled plan — only a load-balancing choice, never a semantic one.
fn plan_coupled_clustered(
    scenario: &Scenario,
    link: &PhysicalLinkModel,
    clusters: &[Vec<NodeId>],
    shards: usize,
    fleet_index: &HashMap<NodeId, usize>,
) -> ShardPlan {
    // Per-node contact weights — the same load proxies the flat planner
    // uses (vehicle contact seconds, BS contact seconds).
    let bs_w: HashMap<NodeId, u64> = scenario.bs_contact_seconds(link, 0.1).into_iter().collect();
    let nc = clusters.len();
    let mut members: Vec<(Vec<(u64, NodeId)>, Vec<(u64, NodeId)>)> = Vec::with_capacity(nc);
    let mut cluster_w: Vec<u64> = Vec::with_capacity(nc);
    for c in clusters {
        let mut vs = Vec::new();
        let mut bs = Vec::new();
        let mut w = 0u64;
        for &n in c {
            if let Some(&bw) = bs_w.get(&n) {
                bs.push((bw, n));
                w += bw;
            } else {
                let vw: u64 = scenario
                    .contact_windows(n, link, 0.1)
                    .iter()
                    .map(|&(a, b)| b - a)
                    .sum();
                vs.push((vw, n));
                w += vw;
            }
        }
        members.push((vs, bs));
        cluster_w.push(w);
    }
    // Which shards host each cluster.
    let mut host: Vec<Vec<usize>> = vec![Vec::new(); nc];
    if shards < nc {
        // Fewer shards than clusters: whole clusters LPT onto shards,
        // heaviest first — a cluster never straddles a shard boundary.
        let mut order: Vec<usize> = (0..nc).collect();
        order.sort_by_key(|&c| (std::cmp::Reverse(cluster_w[c]), c));
        let mut loads = vec![0u64; shards];
        for c in order {
            let lightest = (0..shards)
                .min_by_key(|&s| (loads[s], s))
                .expect(">=1 shard");
            loads[lightest] += cluster_w[c];
            host[c] = vec![lightest];
        }
    } else {
        // At least one shard per cluster: shard counts proportional to
        // cluster weight by largest remainder (everyone keeps their
        // guaranteed one), contiguous shard-id ranges in cluster order.
        let total: u128 = cluster_w.iter().map(|&w| w as u128).sum::<u128>().max(1);
        let extra = shards - nc;
        let mut counts = vec![1usize; nc];
        let mut given = 0usize;
        let mut rem: Vec<(u128, usize)> = Vec::with_capacity(nc);
        for c in 0..nc {
            let exact = extra as u128 * cluster_w[c] as u128;
            let q = (exact / total) as usize;
            counts[c] += q;
            given += q;
            rem.push((exact % total, c));
        }
        rem.sort_by_key(|&(r, c)| (std::cmp::Reverse(r), c));
        for &(_, c) in rem.iter().take(extra - given) {
            counts[c] += 1;
        }
        let mut start = 0usize;
        for c in 0..nc {
            host[c] = (start..start + counts[c]).collect();
            start += counts[c];
        }
        debug_assert_eq!(start, shards);
    }
    // Within each cluster: vehicles LPT across the cluster's shards, BSes
    // LPT independently (mirroring the flat planner's separate ledgers).
    let mut vehicles_of: Vec<Vec<(usize, NodeId)>> = vec![Vec::new(); shards];
    let mut bs_of: Vec<Vec<NodeId>> = vec![Vec::new(); shards];
    for (c, (mut vs, mut bs)) in members.into_iter().enumerate() {
        let hosts = &host[c];
        vs.sort_by_key(|&(w, v)| (std::cmp::Reverse(w), v));
        let mut loads = vec![0u64; hosts.len()];
        for (w, v) in vs {
            let k = (0..hosts.len())
                .min_by_key(|&k| (loads[k], k))
                .expect("cluster hosts at least one shard");
            loads[k] += w;
            vehicles_of[hosts[k]].push((fleet_index[&v], v));
        }
        bs.sort_by_key(|&(w, b)| (std::cmp::Reverse(w), b));
        let mut loads = vec![0u64; hosts.len()];
        for (w, b) in bs {
            let k = (0..hosts.len())
                .min_by_key(|&k| (loads[k], k))
                .expect("cluster hosts at least one shard");
            loads[k] += w;
            bs_of[hosts[k]].push(b);
        }
    }
    ShardPlan {
        assignments: (0..shards)
            .map(|s| ShardAssignment {
                shard_id: s as u32,
                vehicles: std::mem::take(&mut vehicles_of[s]),
                basestations: std::mem::take(&mut bs_of[s]),
            })
            .collect(),
    }
}

/// The seed of one vehicle's Independent sub-run. The partition unit is
/// the vehicle, so streams are keyed by `(run_seed, vehicle)` — never by
/// the shard count — which is what makes Independent outcomes invariant
/// to how many workers execute the plan. Fleet index 0 keeps the run
/// seed itself, so a single-vehicle scenario's sharded run replays the
/// sequential run bit-for-bit.
fn micro_shard_seed(seed: u64, fleet_index: usize, vehicle: NodeId) -> u64 {
    if fleet_index == 0 {
        seed
    } else {
        Rng::new(seed)
            .fork_named("shard")
            .fork(vehicle.label())
            .next_u64()
    }
}

/// Run one vehicle's Independent sub-run: restrict the scenario to the
/// vehicle plus the full infrastructure, run it under its derived seed,
/// and remap the outcome back into the parent scenario's node-id space.
fn run_micro_shard(
    scenario: &Scenario,
    cfg: &RunConfig,
    fleet_index: usize,
    vehicle: NodeId,
    shard_id: u32,
) -> RunOutcome {
    let (sub, mapping) = scenario.with_vehicle_subset(&[vehicle]);
    // Forward-map the fault plan into the sub-scenario's id space; faults
    // aimed at vehicles outside this micro-shard drop out.
    let forward: HashMap<NodeId, NodeId> = mapping.iter().copied().collect();
    let sub_faults = cfg.faults.remap(|n| forward.get(&n).copied());
    let sub_cfg = RunConfig {
        vifi: cfg.vifi.clone(),
        workload: cfg.workload.clone(),
        fleet_workloads: if cfg.fleet_workloads.is_empty() {
            Vec::new()
        } else {
            vec![cfg.fleet_workloads[fleet_index % cfg.fleet_workloads.len()].clone()]
        },
        duration: cfg.duration,
        seed: micro_shard_seed(cfg.seed, fleet_index, vehicle),
        mac: cfg.mac,
        backplane: cfg.backplane,
        wired_delay: cfg.wired_delay,
        shards: 1,
        shard_mode: cfg.shard_mode,
        faults: sub_faults,
        channel: cfg.channel,
        flat_epochs: cfg.flat_epochs,
    };
    let mut out = Simulation::deployment_shard(&sub, sub_cfg, shard_id).run();
    // Map sub-scenario ids back to the parent's (identity whenever the
    // scenario lists basestations before vehicles, but never assumed).
    let back: HashMap<NodeId, NodeId> = mapping.into_iter().map(|(old, new)| (new, old)).collect();
    let remap = |n: NodeId| *back.get(&n).unwrap_or(&n);
    out.log.remap_nodes(remap);
    for v in &mut out.vehicles {
        v.vehicle = remap(v.vehicle);
    }
    out
}

/// Deterministically merge per-vehicle Independent outcomes (paired with
/// their fleet index) into one [`RunOutcome`]: vehicles in fleet order,
/// counters summed, the packet log and primary report taken from the
/// first vehicle — the same shape a sequential fleet run produces.
fn merge_shard_outcomes(mut parts: Vec<(usize, RunOutcome)>) -> RunOutcome {
    assert!(!parts.is_empty(), "sharded run produced no outcomes");
    parts.sort_by_key(|&(fleet_index, _)| fleet_index);
    assert_eq!(parts[0].0, 0, "fleet index 0 must be present");
    let mut vehicles = Vec::with_capacity(parts.len());
    let mut unroutable_down = 0;
    let mut salvaged = 0;
    let mut events = 0;
    let mut frames_tx = 0;
    let mut faults = FaultStats::default();
    let mut log = None;
    for (fleet_index, part) in parts {
        debug_assert_eq!(part.vehicles.len(), 1, "micro-shards host one vehicle");
        unroutable_down += part.unroutable_down;
        salvaged += part.salvaged;
        events += part.events;
        frames_tx += part.frames_tx;
        faults.absorb(&part.faults);
        if fleet_index == 0 {
            log = Some(part.log);
        }
        vehicles.extend(part.vehicles);
    }
    RunOutcome {
        report: vehicles[0].report.clone(),
        anchor_switches: vehicles[0].anchor_switches,
        unroutable_down,
        vehicles,
        salvaged,
        events,
        frames_tx,
        faults,
        log: log.expect("fleet index 0 carries the packet log"),
    }
}

impl Simulation {
    /// Run `(scenario, cfg)` sharded across up to [`RunConfig::shards`]
    /// worker threads and return the merged outcome. `shards <= 1` is the
    /// sequential coupled [`Simulation::run`]; `shards >= 2` decomposes
    /// per [`RunConfig::shard_mode`] — see the module docs.
    pub fn run_sharded(scenario: &Scenario, cfg: RunConfig) -> RunOutcome {
        Self::run_sharded_timed(scenario, cfg).0
    }

    /// [`Simulation::run_sharded`], also returning per-shard wall-clock
    /// accounting (one [`ShardTiming`] per non-empty shard; a single
    /// entry for the sequential `shards <= 1` path). Worker threads are
    /// capped at the host's available parallelism — extra shards queue on
    /// the workers rather than oversubscribing cores, so each shard's
    /// wall-clock measures its own work, not its neighbours' timeslices.
    /// Coupled-mode timings exclude the serial coordinator share; use
    /// [`Simulation::run_coupled_timed`] for the full breakdown.
    pub fn run_sharded_timed(
        scenario: &Scenario,
        cfg: RunConfig,
    ) -> (RunOutcome, Vec<ShardTiming>) {
        let shards = resolve_shards(cfg.shards);
        if shards <= 1 {
            let instrumented = if cfg.fleet_workloads.is_empty() {
                1
            } else {
                scenario.vehicle_ids().len()
            };
            let start = Instant::now();
            let out = Simulation::deployment(scenario, cfg).run();
            let timing = vec![ShardTiming {
                shard_id: 0,
                vehicles: instrumented,
                wall: start.elapsed(),
            }];
            return (out, timing);
        }
        match cfg.shard_mode {
            ShardMode::Independent => Self::run_independent_timed(scenario, cfg),
            ShardMode::Coupled => {
                let plan = plan_shards(scenario, &cfg);
                let (out, timing) = Self::run_coupled_planned(scenario, cfg, None, &plan);
                let timings = plan
                    .assignments
                    .iter()
                    .zip(&timing.per_shard)
                    .map(|(a, &wall)| ShardTiming {
                        shard_id: a.shard_id,
                        vehicles: a.vehicles.len(),
                        wall,
                    })
                    .collect();
                (out, timings)
            }
        }
    }

    /// Run one coupled sharded experiment, returning the outcome plus the
    /// engine's wall-clock breakdown (per-shard epoch work and the serial
    /// coordinator share). `workers` overrides the worker-thread count —
    /// `Some(1)` executes every shard on the calling thread, which is how
    /// the fleet sweep measures honest per-shard walls on small hosts;
    /// `None` uses one thread per shard up to the host's parallelism
    /// (floored at two, so the threaded path is really exercised). The
    /// outcome is bit-identical for every worker count.
    pub fn run_coupled_timed(
        scenario: &Scenario,
        cfg: RunConfig,
        workers: Option<usize>,
    ) -> (RunOutcome, CoupledTiming) {
        let cfg = RunConfig {
            shard_mode: ShardMode::Coupled,
            ..cfg
        };
        let plan = plan_shards(scenario, &cfg);
        Self::run_coupled_planned(scenario, cfg, workers, &plan)
    }

    /// [`Simulation::run_coupled_timed`] with an already-computed plan —
    /// the planner's contact analysis is not free, so callers that
    /// needed the plan anyway (e.g. [`Simulation::run_sharded_timed`])
    /// pass it in instead of replanning.
    fn run_coupled_planned(
        scenario: &Scenario,
        cfg: RunConfig,
        workers: Option<usize>,
        plan: &ShardPlan,
    ) -> (RunOutcome, CoupledTiming) {
        let partition = EnginePartition {
            lanes: plan
                .assignments
                .iter()
                .map(|a| {
                    let mut lane: Vec<NodeId> = a.vehicles.iter().map(|&(_, v)| v).collect();
                    lane.extend(a.basestations.iter().copied());
                    lane
                })
                .collect(),
        };
        let workers = workers.unwrap_or_else(|| {
            partition.lanes.len().min(
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
                    .max(2),
            )
        });
        let sim = Simulation::deployment(scenario, cfg);
        let setup = sim.engine_setup(partition, workers);
        engine::run(setup)
    }

    /// The Independent-mode parallel executor (PR 4 semantics).
    fn run_independent_timed(
        scenario: &Scenario,
        cfg: RunConfig,
    ) -> (RunOutcome, Vec<ShardTiming>) {
        let plan = plan_shards(scenario, &cfg);
        let busy: Vec<&ShardAssignment> = plan
            .assignments
            .iter()
            .filter(|a| !a.vehicles.is_empty())
            .collect();
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(busy.len())
            .max(1);
        let cfg = &cfg;
        let mut merged: Vec<(usize, RunOutcome)> = Vec::new();
        let mut timings: Vec<ShardTiming> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let busy = &busy;
                    s.spawn(move || {
                        let mut parts: Vec<(usize, RunOutcome)> = Vec::new();
                        let mut timings: Vec<ShardTiming> = Vec::new();
                        let mut i = w;
                        while i < busy.len() {
                            let a = busy[i];
                            let start = Instant::now();
                            for &(fleet_index, vehicle) in &a.vehicles {
                                parts.push((
                                    fleet_index,
                                    run_micro_shard(
                                        scenario,
                                        cfg,
                                        fleet_index,
                                        vehicle,
                                        a.shard_id,
                                    ),
                                ));
                            }
                            timings.push(ShardTiming {
                                shard_id: a.shard_id,
                                vehicles: a.vehicles.len(),
                                wall: start.elapsed(),
                            });
                            i += workers;
                        }
                        (parts, timings)
                    })
                })
                .collect();
            for h in handles {
                let (parts, t) = h.join().expect("shard worker panicked");
                merged.extend(parts);
                timings.extend(t);
            }
        });
        timings.sort_by_key(|t| t.shard_id);
        (merge_shard_outcomes(merged), timings)
    }

    /// The sequential reference path of the Independent semantics:
    /// execute the same per-vehicle decomposition as `shards >= 2`,
    /// inline on the calling thread, in fleet order. `run_sharded` in
    /// Independent mode with any shard count `>= 2` is bit-identical to
    /// this — the equivalence suite pins the parallel executor against it.
    pub fn run_sharded_sequential(scenario: &Scenario, cfg: RunConfig) -> RunOutcome {
        let plan = plan_shards(
            scenario,
            &RunConfig {
                shards: 1,
                shard_mode: ShardMode::Independent,
                ..cfg.clone()
            },
        );
        let parts: Vec<(usize, RunOutcome)> = plan.assignments[0]
            .vehicles
            .iter()
            .map(|&(fleet_index, vehicle)| {
                (
                    fleet_index,
                    run_micro_shard(scenario, &cfg, fleet_index, vehicle, 0),
                )
            })
            .collect();
        merge_shard_outcomes(parts)
    }
}

impl Fingerprintable for VehicleOutcome {
    fn fingerprint_into(&self, fp: &mut Fingerprint) {
        fp.push_u64(self.vehicle.label());
        self.report.fingerprint_into(fp);
        fp.push_u64(self.anchor_switches);
        fp.push_u64(self.unroutable_down);
    }
}

impl Fingerprintable for RunOutcome {
    fn fingerprint_into(&self, fp: &mut Fingerprint) {
        self.report.fingerprint_into(fp);
        fp.push_len(self.vehicles.len());
        for v in &self.vehicles {
            v.fingerprint_into(fp);
        }
        self.log.fingerprint_into(fp);
        fp.push_u64(self.anchor_switches);
        fp.push_u64(self.salvaged);
        fp.push_u64(self.unroutable_down);
        fp.push_u64(self.events);
        fp.push_u64(self.frames_tx);
        self.faults.fingerprint_into(fp);
    }
}

impl RunOutcome {
    /// Canonical digest of every observable field of this outcome (probe
    /// outcomes, delays, log records, counters; floats by bit pattern).
    /// Two outcomes with equal fingerprints are bit-identical for every
    /// purpose the evaluation reads — this is the equality the
    /// shard-equivalence suite asserts.
    pub fn fingerprint(&self) -> u64 {
        Fingerprintable::fingerprint(self)
    }
}

/// Kind of a node in this simulation (diagnostic helper).
pub fn node_kind_name(kind: NodeKind) -> &'static str {
    match kind {
        NodeKind::Vehicle => "vehicle",
        NodeKind::Basestation => "basestation",
        NodeKind::Wired => "wired",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vifi_sim::SimDuration;
    use vifi_testbeds::{dieselnet_ch1, generate_beacon_trace, vanlan};

    fn quick_cfg(workload: WorkloadSpec, secs: u64, seed: u64) -> RunConfig {
        RunConfig {
            workload,
            duration: SimDuration::from_secs(secs),
            seed,
            ..RunConfig::default()
        }
    }

    #[test]
    fn idle_run_beacons_flow() {
        let s = vanlan(1);
        let sim = Simulation::deployment(&s, quick_cfg(WorkloadSpec::Idle, 20, 1));
        let out = sim.run();
        assert!(out.events > 100, "events {}", out.events);
        assert!(out.frames_tx > 100, "beacons on the air: {}", out.frames_tx);
        assert!(matches!(out.report, WorkloadReport::Idle));
    }

    #[test]
    fn cbr_run_delivers_probes() {
        let s = vanlan(1);
        let sim = Simulation::deployment(&s, quick_cfg(WorkloadSpec::paper_cbr(), 120, 2));
        let out = sim.run();
        let stats = match out.report {
            WorkloadReport::Cbr(c) => c,
            other => panic!("wrong report {other:?}"),
        };
        // 120 s at 10 Hz each way (the tick at exactly t = 120 s also
        // fires, hence the +1).
        assert!(
            (1200..=1201).contains(&stats.up.len()),
            "{}",
            stats.up.len()
        );
        assert!(
            (1200..=1201).contains(&stats.down.len()),
            "{}",
            stats.down.len()
        );
        // The van drives through campus in the first two minutes: a good
        // chunk of probes must get through.
        let delivered = stats.total_delivered();
        assert!(delivered > 200, "delivered {delivered}");
        assert!(delivered < 2400, "not everything is reachable");
    }

    #[test]
    fn deterministic_replay() {
        let s = vanlan(1);
        let run = |seed| {
            let sim = Simulation::deployment(&s, quick_cfg(WorkloadSpec::paper_cbr(), 60, seed));
            let out = sim.run();
            match out.report {
                WorkloadReport::Cbr(c) => (c.total_delivered(), out.events, out.frames_tx),
                _ => unreachable!(),
            }
        };
        assert_eq!(run(7), run(7), "same seed, same run");
        assert_ne!(run(7), run(8), "different seed, different run");
    }

    #[test]
    fn vifi_beats_brr_on_cbr_delivery() {
        let s = vanlan(1);
        let run = |vifi: VifiConfig| {
            let cfg = RunConfig {
                vifi,
                ..quick_cfg(WorkloadSpec::paper_cbr(), 180, 3)
            };
            let out = Simulation::deployment(&s, cfg).run();
            match out.report {
                WorkloadReport::Cbr(c) => c.total_delivered(),
                _ => unreachable!(),
            }
        };
        let vifi = run(VifiConfig::default().without_retx());
        let brr = run(VifiConfig::brr_baseline().without_retx());
        assert!(
            vifi > brr,
            "diversity must deliver more: ViFi {vifi} vs BRR {brr}"
        );
    }

    #[test]
    fn relaying_happens_and_is_logged() {
        let s = vanlan(1);
        let out = Simulation::deployment(&s, quick_cfg(WorkloadSpec::paper_cbr(), 180, 4)).run();
        let relays: usize = out.log.records.iter().map(|r| r.relays.len()).sum();
        assert!(relays > 0, "some packets must be relayed");
        let decisions: usize = out.log.records.iter().map(|r| r.decisions.len()).sum();
        assert!(decisions >= relays);
        // Upstream relays ride the backplane, downstream ones the air.
        let up_air = out
            .log
            .records
            .iter()
            .filter(|r| r.dir == vifi_core::Direction::Upstream)
            .flat_map(|r| r.relays.iter())
            .filter(|f| !f.via_backplane)
            .count();
        assert_eq!(up_air, 0, "upstream relays never use the air");
    }

    #[test]
    fn anchor_switches_under_mobility() {
        let s = vanlan(1);
        let out = Simulation::deployment(&s, quick_cfg(WorkloadSpec::Idle, 200, 5)).run();
        assert!(
            out.anchor_switches >= 1,
            "driving across campus must switch anchors"
        );
    }

    #[test]
    fn trace_driven_mode_runs() {
        let s = dieselnet_ch1();
        let veh = s.vehicle_ids()[0];
        let trace = generate_beacon_trace(&s, veh, SimDuration::from_secs(150), 10, &Rng::new(6));
        let out =
            Simulation::trace_driven(&trace, quick_cfg(WorkloadSpec::paper_cbr(), 150, 6)).run();
        let stats = match out.report {
            WorkloadReport::Cbr(c) => c,
            _ => unreachable!(),
        };
        assert!(stats.total_delivered() > 50, "{}", stats.total_delivered());
    }

    #[test]
    fn tcp_workload_completes_transfers() {
        let s = vanlan(1);
        let out = Simulation::deployment(&s, quick_cfg(WorkloadSpec::paper_tcp(), 180, 7)).run();
        let stats = match out.report {
            WorkloadReport::Tcp(t) => t,
            _ => unreachable!(),
        };
        let total = stats.down.transfer_times.len() + stats.up.transfer_times.len();
        assert!(total > 3, "completed transfers {total}");
    }

    #[test]
    fn voip_workload_scores() {
        let s = vanlan(1);
        let cfg = RunConfig {
            wired_delay: SimDuration::ZERO, // the scorer adds the fixed 40 ms
            ..quick_cfg(WorkloadSpec::Voip, 120, 8)
        };
        let out = Simulation::deployment(&s, cfg).run();
        let stats = match out.report {
            WorkloadReport::Voip(v) => v,
            _ => unreachable!(),
        };
        assert!(!stats.down.scores.is_empty());
        // While on campus some windows must be decent.
        assert!(
            stats.down.scores.iter().any(|w| w.mos > 3.0),
            "some good windows expected"
        );
    }

    #[test]
    fn efficiency_ledgers_populate() {
        let s = vanlan(1);
        let out = Simulation::deployment(&s, quick_cfg(WorkloadSpec::paper_cbr(), 120, 9)).run();
        assert!(out.log.ledger_up.wireless_tx > 0);
        assert!(out.log.ledger_down.wireless_tx > 0);
        let eff_up = out.log.ledger_up.efficiency();
        let eff_down = out.log.ledger_down.efficiency();
        assert!(eff_up > 0.0 && eff_up <= 1.0, "up {eff_up}");
        assert!(eff_down > 0.0 && eff_down <= 1.0, "down {eff_down}");
    }

    #[test]
    fn fleet_runs_give_every_vehicle_a_workload() {
        let s = vanlan(3);
        let cfg = RunConfig {
            fleet_workloads: vec![WorkloadSpec::paper_cbr()],
            ..quick_cfg(WorkloadSpec::Idle, 60, 11)
        };
        let out = Simulation::deployment(&s, cfg).run();
        assert_eq!(out.vehicles.len(), 3);
        let mut carrying = 0;
        for v in &out.vehicles {
            let c = match &v.report {
                WorkloadReport::Cbr(c) => c,
                other => panic!("every van runs CBR, got {other:?}"),
            };
            assert!(c.total_sent() > 500, "sent {}", c.total_sent());
            if c.total_delivered() > 0 {
                carrying += 1;
            }
        }
        // The vans are phase-spread: not all are in coverage during the
        // first minute, but at least one must deliver.
        assert!(carrying >= 1);
        // The primary report mirrors vehicles[0].
        assert_eq!(
            out.report.as_cbr().unwrap().total_delivered(),
            out.vehicles[0].report.as_cbr().unwrap().total_delivered()
        );
    }

    #[test]
    fn fleet_workloads_cycle_across_vehicles() {
        let s = vanlan(2);
        let cfg = RunConfig {
            fleet_workloads: vec![WorkloadSpec::paper_cbr(), WorkloadSpec::Idle],
            ..quick_cfg(WorkloadSpec::Idle, 30, 12)
        };
        let out = Simulation::deployment(&s, cfg).run();
        assert!(matches!(out.vehicles[0].report, WorkloadReport::Cbr(_)));
        assert!(matches!(out.vehicles[1].report, WorkloadReport::Idle));
    }

    #[test]
    fn fleet_mode_is_deterministic() {
        let s = vanlan(2);
        let run = |seed| {
            let cfg = RunConfig {
                fleet_workloads: vec![WorkloadSpec::paper_cbr()],
                ..quick_cfg(WorkloadSpec::Idle, 60, seed)
            };
            let out = Simulation::deployment(&s, cfg).run();
            let per: Vec<u64> = out
                .vehicles
                .iter()
                .map(|v| v.report.as_cbr().unwrap().total_delivered())
                .collect();
            (per, out.events, out.frames_tx)
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn default_mode_instruments_only_first_vehicle() {
        // Without fleet_workloads a multi-vehicle scenario behaves as
        // before: one workload host, background vans only beacon.
        let s = vanlan(2);
        let out = Simulation::deployment(&s, quick_cfg(WorkloadSpec::paper_cbr(), 30, 13)).run();
        assert_eq!(out.vehicles.len(), 1);
        assert_eq!(out.vehicles[0].vehicle, s.vehicle_ids()[0]);
        assert!(matches!(out.report, WorkloadReport::Cbr(_)));
    }

    #[test]
    fn fleet_aggregate_cbr_sums_vehicles() {
        let s = vanlan(2);
        let cfg = RunConfig {
            fleet_workloads: vec![WorkloadSpec::paper_cbr()],
            ..quick_cfg(WorkloadSpec::Idle, 40, 14)
        };
        let out = Simulation::deployment(&s, cfg).run();
        let agg = crate::workload::aggregate_cbr(out.vehicles.iter().map(|v| &v.report));
        let sum_sent: u64 = out
            .vehicles
            .iter()
            .map(|v| v.report.as_cbr().unwrap().total_sent())
            .sum();
        assert_eq!(agg.total_sent(), sum_sent);
    }

    #[test]
    fn shard_plan_partitions_instrumented_vehicles() {
        let s = vanlan(1);
        // Non-fleet Independent mode: one micro-shard (the instrumented
        // vehicle).
        let cfg = quick_cfg(WorkloadSpec::paper_cbr(), 10, 1);
        let plan = plan_shards(&s, &RunConfig { shards: 4, ..cfg });
        assert_eq!(plan.assignments.len(), 4);
        assert_eq!(plan.vehicles(), 1);
        assert_eq!(plan.assignments[0].vehicles, vec![(0, s.vehicle_ids()[0])]);
        assert!(plan.assignments.iter().all(|a| a.basestations.is_empty()));
        // Fleet mode: every vehicle, round-robin.
        let s = vanlan(5);
        let cfg = RunConfig {
            fleet_workloads: vec![WorkloadSpec::paper_cbr()],
            shards: 2,
            ..quick_cfg(WorkloadSpec::Idle, 10, 1)
        };
        let plan = plan_shards(&s, &cfg);
        assert_eq!(plan.vehicles(), 5);
        let vs = s.vehicle_ids();
        assert_eq!(
            plan.assignments[0].vehicles,
            vec![(0, vs[0]), (2, vs[2]), (4, vs[4])]
        );
        assert_eq!(plan.assignments[1].vehicles, vec![(1, vs[1]), (3, vs[3])]);
    }

    #[test]
    fn coupled_plan_covers_every_node_exactly_once() {
        let s = vanlan(4);
        let cfg = RunConfig {
            fleet_workloads: vec![WorkloadSpec::paper_cbr()],
            shards: 3,
            shard_mode: ShardMode::Coupled,
            ..quick_cfg(WorkloadSpec::Idle, 10, 1)
        };
        let plan = plan_shards(&s, &cfg);
        assert_eq!(plan.assignments.len(), 3);
        let mut vehicles: Vec<NodeId> = plan
            .assignments
            .iter()
            .flat_map(|a| a.vehicles.iter().map(|&(_, v)| v))
            .collect();
        vehicles.sort_by_key(|n| n.index());
        assert_eq!(vehicles, s.vehicle_ids(), "all vehicles, background too");
        let mut bs: Vec<NodeId> = plan
            .assignments
            .iter()
            .flat_map(|a| a.basestations.iter().copied())
            .collect();
        bs.sort_by_key(|n| n.index());
        assert_eq!(bs, s.bs_ids(), "every BS owned by exactly one shard");
        // Deterministic plan.
        let again = plan_shards(&s, &cfg);
        for (a, b) in plan.assignments.iter().zip(&again.assignments) {
            assert_eq!(a.vehicles, b.vehicles);
            assert_eq!(a.basestations, b.basestations);
        }
    }

    #[test]
    fn coupled_mode_is_bit_identical_to_sequential() {
        // The headline property, in miniature (the full grid lives in
        // tests/shard_equivalence.rs): coupled sharded runs reproduce the
        // sequential coupled run bit for bit, at any worker count.
        let s = vanlan(2);
        let cfg = RunConfig {
            fleet_workloads: vec![WorkloadSpec::paper_cbr()],
            ..quick_cfg(WorkloadSpec::Idle, 12, 21)
        };
        let sequential = Simulation::deployment(&s, cfg.clone()).run().fingerprint();
        for shards in [2usize, 3] {
            let coupled = Simulation::run_sharded(
                &s,
                RunConfig {
                    shards,
                    shard_mode: ShardMode::Coupled,
                    ..cfg.clone()
                },
            )
            .fingerprint();
            assert_eq!(coupled, sequential, "shards={shards}");
        }
        // Worker count is also irrelevant (serial vs threaded executor).
        let (serial, _) = Simulation::run_coupled_timed(
            &s,
            RunConfig {
                shards: 2,
                ..cfg.clone()
            },
            Some(1),
        );
        assert_eq!(serial.fingerprint(), sequential);
    }

    #[test]
    fn single_vehicle_sharded_is_bit_identical_to_sequential() {
        // The paper's setup (one instrumented vehicle) under any shard
        // count replays the sequential run exactly: the sub-scenario is
        // the scenario and micro-shard 0 keeps the run seed.
        let s = vanlan(1);
        let cfg = quick_cfg(WorkloadSpec::paper_cbr(), 40, 9);
        let sequential = Simulation::deployment(&s, cfg.clone()).run();
        for shards in [2usize, 3] {
            let sharded = Simulation::run_sharded(
                &s,
                RunConfig {
                    shards,
                    ..cfg.clone()
                },
            );
            assert_eq!(
                sharded.fingerprint(),
                sequential.fingerprint(),
                "shards={shards}"
            );
        }
    }

    #[test]
    fn sharded_fleet_merges_in_vehicle_order() {
        let s = vanlan(3);
        let cfg = RunConfig {
            fleet_workloads: vec![WorkloadSpec::paper_cbr()],
            shards: 2,
            ..quick_cfg(WorkloadSpec::Idle, 30, 4)
        };
        let (out, timings) = Simulation::run_sharded_timed(&s, cfg);
        assert_eq!(out.vehicles.len(), 3);
        let ids: Vec<NodeId> = out.vehicles.iter().map(|v| v.vehicle).collect();
        assert_eq!(ids, s.vehicle_ids(), "merged outcomes in vehicle order");
        // The primary report and switch counter mirror vehicle 0, counters
        // sum across shards.
        assert_eq!(
            out.report.as_cbr().unwrap().total_delivered(),
            out.vehicles[0].report.as_cbr().unwrap().total_delivered()
        );
        assert_eq!(out.anchor_switches, out.vehicles[0].anchor_switches);
        assert_eq!(
            out.unroutable_down,
            out.vehicles.iter().map(|v| v.unroutable_down).sum::<u64>()
        );
        // Two non-empty shards: 2 vehicles + 1 vehicle.
        assert_eq!(timings.len(), 2);
        assert_eq!(timings[0].vehicles + timings[1].vehicles, 3);
    }

    #[test]
    fn sharded_runs_are_invariant_to_shard_count() {
        let s = vanlan(4);
        let run = |shards| {
            let cfg = RunConfig {
                fleet_workloads: vec![WorkloadSpec::paper_cbr()],
                shards,
                ..quick_cfg(WorkloadSpec::Idle, 30, 6)
            };
            Simulation::run_sharded(&s, cfg).fingerprint()
        };
        let sequential_plan = Simulation::run_sharded_sequential(
            &s,
            RunConfig {
                fleet_workloads: vec![WorkloadSpec::paper_cbr()],
                ..quick_cfg(WorkloadSpec::Idle, 30, 6)
            },
        )
        .fingerprint();
        let two = run(2);
        assert_eq!(two, run(3));
        assert_eq!(two, run(8), "more shards than vehicles");
        assert_eq!(two, sequential_plan, "parallel == sequential plan");
    }

    #[test]
    fn salvaging_counts_with_tcp() {
        let s = vanlan(1);
        // Long enough to cross anchor changes mid-transfer.
        let out = Simulation::deployment(&s, quick_cfg(WorkloadSpec::paper_tcp(), 400, 10)).run();
        // Salvage may legitimately be zero on some seeds, but switches
        // must happen; assert the machinery at least ran.
        assert!(out.anchor_switches > 0);
        let _ = out.salvaged; // smoke: field exists and is consistent
    }
}
