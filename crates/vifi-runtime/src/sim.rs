//! The full-stack discrete-event simulation.
//!
//! One [`Simulation`] = one experiment run: a link model (physical or
//! trace-driven), the CSMA medium, the backplane, a ViFi/BRR endpoint per
//! radio node, one instrumented vehicle carrying an application workload,
//! and an Internet host behind a wired hop. Determinism: everything
//! derives from `(RunConfig, seed)`.

use std::collections::HashMap;

use bytes::Bytes;
use vifi_core::endpoint::BackplaneMsg;
use vifi_core::{Action, Direction, Endpoint, PacketId, Role, StatEvent, VifiConfig, VifiPayload};
use vifi_mac::{Backplane, BackplaneParams, BeaconSchedule, Frame, MacParams, Medium, TxHandle};
use vifi_phy::{LinkModel, NodeId, NodeKind};
use vifi_sim::{Rng, Scheduler, SimDuration, SimTime, TimerToken};
use vifi_testbeds::trace::TraceSimSetup;
use vifi_testbeds::{BeaconTrace, Scenario};

use crate::logging::RunLog;
use crate::workload::{build_driver, Driver, HostApi, HostCmd, WorkloadReport, WorkloadSpec};

/// Experiment configuration.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Protocol configuration (ViFi / BRR / ablations).
    pub vifi: VifiConfig,
    /// Application workload.
    pub workload: WorkloadSpec,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Run seed.
    pub seed: u64,
    /// MAC parameters.
    pub mac: MacParams,
    /// Backplane parameters.
    pub backplane: BackplaneParams,
    /// One-way wired delay between the anchor and the Internet host.
    /// Note: VoIP runs should keep this 0 — the VoIP scorer adds the
    /// paper's fixed 40 ms wired budget itself (§5.3.2).
    pub wired_delay: SimDuration,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            vifi: VifiConfig::default(),
            workload: WorkloadSpec::Idle,
            duration: SimDuration::from_secs(60),
            seed: 1,
            mac: MacParams::default(),
            backplane: BackplaneParams::default(),
            wired_delay: SimDuration::from_millis(10),
        }
    }
}

/// Scheduler events.
enum Event {
    /// A node's beacon is due.
    Beacon(NodeId),
    /// A wireless transmission completed.
    TxDone(NodeId, TxHandle),
    /// A node's protocol timer fired.
    Wakeup(NodeId),
    /// A backplane message arrived.
    BackplaneArrive {
        from: NodeId,
        to: NodeId,
        msg: BackplaneMsg,
    },
    /// A downstream application payload reached the anchor's radio side.
    WiredDownArrive(Bytes),
    /// An upstream application payload reached the Internet host.
    WiredUpArrive {
        payload: Bytes,
        /// When the anchor received it (radio exit time).
        radio_exit: SimTime,
    },
    /// Workload tick.
    AppTick(u8),
}

/// Results of one run.
pub struct RunOutcome {
    /// Workload-level report.
    pub report: WorkloadReport,
    /// Packet-level log (Tables 1/2, Fig. 12, PerfectRelay).
    pub log: RunLog,
    /// Anchor switches observed at the instrumented vehicle.
    pub anchor_switches: u64,
    /// Packets recovered through salvage at new anchors.
    pub salvaged: u64,
    /// Downstream app packets dropped because the vehicle had no anchor.
    pub unroutable_down: u64,
    /// Total events dispatched (performance accounting).
    pub events: u64,
    /// Total wireless frames transmitted.
    pub frames_tx: u64,
}

/// The assembled simulation.
pub struct Simulation {
    cfg: RunConfig,
    sched: Scheduler<Event>,
    link: Box<dyn LinkModel>,
    medium: Medium<VifiPayload>,
    backplane: Backplane,
    beacons: BeaconSchedule,
    endpoints: HashMap<NodeId, Endpoint>,
    iface_busy: HashMap<NodeId, bool>,
    pending_beacon: HashMap<NodeId, (VifiPayload, u32)>,
    wakeup_tokens: HashMap<NodeId, TimerToken>,
    /// The instrumented vehicle.
    vehicle: NodeId,
    bs_ids: Vec<NodeId>,
    driver: Option<Box<dyn Driver>>,
    log: RunLog,
    rng_mac: Rng,
    rng_driver: Rng,
    anchor_switches: u64,
    salvaged: u64,
    unroutable_down: u64,
}

impl Simulation {
    /// Deployment mode: build from a scenario (physical channel). The
    /// first vehicle is instrumented; any further vehicles run the
    /// protocol (beacons, anchoring) as background occupants of the
    /// channel.
    pub fn deployment(scenario: &Scenario, cfg: RunConfig) -> Self {
        let rng = Rng::new(cfg.seed);
        let link = Box::new(scenario.build_link_model(&rng));
        let vehicles = scenario.vehicle_ids();
        let bs_ids = scenario.bs_ids();
        Self::assemble(link, vehicles, bs_ids, cfg, rng)
    }

    /// Trace-driven mode (§5.1): build from a beacon trace.
    pub fn trace_driven(trace: &BeaconTrace, cfg: RunConfig) -> Self {
        let rng = Rng::new(cfg.seed);
        let setup = TraceSimSetup::from_trace(trace, &rng);
        let vehicles = vec![setup.vehicle];
        let bs_ids = setup.bs_ids.clone();
        Self::assemble(Box::new(setup.link), vehicles, bs_ids, cfg, rng)
    }

    fn assemble(
        link: Box<dyn LinkModel>,
        vehicles: Vec<NodeId>,
        bs_ids: Vec<NodeId>,
        cfg: RunConfig,
        rng: Rng,
    ) -> Self {
        assert!(!vehicles.is_empty() && !bs_ids.is_empty());
        let mut endpoints = HashMap::new();
        let mut iface_busy = HashMap::new();
        for &v in &vehicles {
            endpoints.insert(
                v,
                Endpoint::new(
                    v,
                    Role::Vehicle,
                    cfg.vifi.clone(),
                    bs_ids.clone(),
                    rng.fork(0x5EED_0000 + v.label()),
                ),
            );
            iface_busy.insert(v, false);
        }
        for &b in &bs_ids {
            endpoints.insert(
                b,
                Endpoint::new(
                    b,
                    Role::Bs,
                    cfg.vifi.clone(),
                    bs_ids.clone(),
                    rng.fork(0x5EED_1000 + b.label()),
                ),
            );
            iface_busy.insert(b, false);
        }
        let beacons = BeaconSchedule::new(cfg.vifi.beacon_period, &rng);
        Simulation {
            medium: Medium::new(cfg.mac),
            backplane: Backplane::new(cfg.backplane),
            beacons,
            sched: Scheduler::new(),
            link,
            endpoints,
            iface_busy,
            pending_beacon: HashMap::new(),
            wakeup_tokens: HashMap::new(),
            vehicle: vehicles[0],
            bs_ids,
            driver: Some(build_driver(&cfg.workload, SimTime::ZERO)),
            log: RunLog::new(),
            rng_mac: rng.fork_named("mac"),
            rng_driver: rng.fork_named("driver"),
            cfg,
            anchor_switches: 0,
            salvaged: 0,
            unroutable_down: 0,
        }
    }

    /// The instrumented vehicle's node id.
    pub fn vehicle(&self) -> NodeId {
        self.vehicle
    }

    fn is_bs(&self, n: NodeId) -> bool {
        self.bs_ids.contains(&n)
    }

    /// Traffic direction of a data frame by its logical source.
    fn dir_of_src(&self, flow_src: NodeId) -> Direction {
        if self.is_bs(flow_src) {
            Direction::Downstream
        } else {
            Direction::Upstream
        }
    }

    /// Run to completion and produce the outcome.
    pub fn run(mut self) -> RunOutcome {
        // Kick off beacons for every radio node.
        let ids: Vec<NodeId> = self.endpoints.keys().copied().collect();
        for id in ids {
            let at = self.beacons.next_after(id, SimTime::ZERO);
            self.sched.at(at, Event::Beacon(id));
        }
        // Start the workload.
        self.with_driver(SimTime::ZERO, |d, api| d.start(api));

        let horizon = SimTime::ZERO + self.cfg.duration;
        while let Some(at) = self.sched.peek_time() {
            if at > horizon {
                break;
            }
            let (now, ev) = self.sched.step().expect("peeked event vanished");
            self.dispatch(now, ev);
        }

        let end = self.sched.now();
        let mut driver = self.driver.take().expect("driver present");
        let report = driver.report(end);
        RunOutcome {
            report,
            anchor_switches: self.anchor_switches,
            salvaged: self.salvaged,
            unroutable_down: self.unroutable_down,
            events: self.sched.dispatched(),
            frames_tx: self.medium.tx_count,
            log: self.log,
        }
    }

    fn dispatch(&mut self, now: SimTime, ev: Event) {
        match ev {
            Event::Beacon(node) => self.on_beacon_due(node, now),
            Event::TxDone(node, handle) => self.on_tx_done(node, handle, now),
            Event::Wakeup(node) => {
                self.wakeup_tokens.remove(&node);
                let acts = self
                    .endpoints
                    .get_mut(&node)
                    .expect("endpoint")
                    .on_wakeup(now);
                self.handle_actions(node, acts, now);
                self.pump(node, now);
            }
            Event::BackplaneArrive { from, to, msg } => {
                if let BackplaneMsg::RelayData(d) = &msg {
                    // An upstream relay reaching the anchor's process
                    // counts as having reached the destination.
                    self.log.on_relay(d.id, from, true, true);
                }
                if let BackplaneMsg::SalvageData { packets, .. } = &msg {
                    self.salvaged += packets.len() as u64;
                }
                let acts = match self.endpoints.get_mut(&to) {
                    Some(ep) => ep.on_backplane(from, &msg, now),
                    None => Vec::new(),
                };
                self.handle_actions(to, acts, now);
                self.pump(to, now);
            }
            Event::WiredDownArrive(payload) => {
                let anchor = self
                    .endpoints
                    .get(&self.vehicle)
                    .expect("vehicle endpoint")
                    .anchor();
                match anchor {
                    Some(a) => {
                        let vehicle = self.vehicle;
                        self.endpoints
                            .get_mut(&a)
                            .expect("anchor endpoint")
                            .send_app(payload, Some(vehicle), now);
                        self.pump(a, now);
                    }
                    None => {
                        self.unroutable_down += 1;
                    }
                }
            }
            Event::WiredUpArrive {
                payload,
                radio_exit,
            } => {
                self.with_driver(now, |d, api| d.on_internet_rx(&payload, radio_exit, api));
            }
            Event::AppTick(chan) => {
                self.with_driver(now, |d, api| d.on_tick(chan, api));
            }
        }
    }

    // ------------------------------------------------------------------
    // Beacons and the interface
    // ------------------------------------------------------------------

    fn on_beacon_due(&mut self, node: NodeId, now: SimTime) {
        let (payload, bytes, acts) = self
            .endpoints
            .get_mut(&node)
            .expect("endpoint")
            .make_beacon(now);
        self.handle_actions(node, acts, now);
        if node == self.vehicle {
            if let VifiPayload::Beacon(b) = &payload {
                if let Some(v) = &b.vehicle {
                    // A1 counts auxiliaries while connected (the paper's
                    // statistics come from packet logs, which only exist
                    // when an anchor carries traffic).
                    if v.anchor.is_some() {
                        self.log.on_aux_sample(now.second_bin(), v.aux.len());
                    }
                }
            }
        }
        if self.iface_busy[&node] {
            // Replace any stale pending beacon with the fresh one.
            self.pending_beacon.insert(node, (payload, bytes));
        } else {
            self.start_tx(node, payload, bytes, now);
        }
        let next = self.beacons.next_after(node, now);
        self.sched.at(next, Event::Beacon(node));
        self.pump(node, now);
    }

    fn start_tx(&mut self, node: NodeId, payload: VifiPayload, bytes: u32, now: SimTime) {
        let frame = Frame::new(node, bytes, payload);
        let (handle, _start, end) =
            self.medium
                .begin_tx(frame, now, self.link.as_ref(), &mut self.rng_mac);
        self.iface_busy.insert(node, true);
        self.sched.at(end, Event::TxDone(node, handle));
    }

    fn on_tx_done(&mut self, node: NodeId, handle: TxHandle, now: SimTime) {
        let (frame, receptions) =
            self.medium
                .complete_tx(handle, now, self.link.as_mut(), &mut self.rng_mac);
        let rx_ids: Vec<NodeId> = receptions.iter().map(|r| r.rx).collect();

        // ---- instrumentation ----
        match &frame.payload {
            VifiPayload::Data(d) => {
                let dir = self.dir_of_src(d.flow_src);
                let ledger = match dir {
                    Direction::Upstream => &mut self.log.ledger_up,
                    Direction::Downstream => &mut self.log.ledger_down,
                };
                ledger.on_wireless_tx();
                if let Some(relayer) = d.relayed_by {
                    // A wireless (downstream) relay: its fate is whether
                    // the destination received it.
                    let reached = rx_ids.contains(&d.flow_dst);
                    self.log.on_relay(d.id, relayer, false, reached);
                } else {
                    // Source transmission: snapshot the aux set and who
                    // heard what.
                    let aux_set = self
                        .endpoints
                        .get_mut(&self.vehicle)
                        .expect("vehicle")
                        .current_aux(now);
                    let aux_heard: Vec<NodeId> = rx_ids
                        .iter()
                        .copied()
                        .filter(|n| aux_set.contains(n))
                        .collect();
                    let dst_heard = rx_ids.contains(&d.flow_dst);
                    self.log
                        .on_source_tx(d.id, dir, now, aux_set, aux_heard, dst_heard);
                }
            }
            VifiPayload::Ack(a) => {
                self.log.on_ack_heard(a.id, &rx_ids);
                let dir = self.dir_of_src(a.id.origin);
                match dir {
                    Direction::Upstream => self.log.ledger_up.on_ack_tx(),
                    Direction::Downstream => self.log.ledger_down.on_ack_tx(),
                }
            }
            VifiPayload::Beacon(_) => {}
        }

        // ---- delivery to receivers ----
        for rx in rx_ids {
            if let Some(ep) = self.endpoints.get_mut(&rx) {
                let acts = ep.on_frame(&frame.payload, now);
                self.handle_actions(rx, acts, now);
                self.pump(rx, now);
            }
        }

        // ---- sender interface is free again ----
        self.iface_busy.insert(node, false);
        if let Some((payload, bytes)) = self.pending_beacon.remove(&node) {
            self.start_tx(node, payload, bytes, now);
        }
        self.pump(node, now);
    }

    /// Refresh a node's wakeup timer and start a transmission if its
    /// interface is idle and it has frames queued.
    fn pump(&mut self, node: NodeId, now: SimTime) {
        // Wakeup timer maintenance.
        let next = self.endpoints.get(&node).and_then(|ep| ep.next_wakeup());
        if let Some(tok) = self.wakeup_tokens.remove(&node) {
            self.sched.cancel(tok);
        }
        if let Some(at) = next {
            let at = at.max(now);
            let tok = self.sched.at(at, Event::Wakeup(node));
            self.wakeup_tokens.insert(node, tok);
        }
        // Interface.
        if !self.iface_busy[&node] {
            if let Some(ep) = self.endpoints.get_mut(&node) {
                if ep.has_tx() {
                    if let Some((payload, bytes)) = ep.pull_frame(now) {
                        self.start_tx(node, payload, bytes, now);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Endpoint actions and driver plumbing
    // ------------------------------------------------------------------

    fn handle_actions(&mut self, node: NodeId, acts: Vec<Action>, now: SimTime) {
        for act in acts {
            match act {
                Action::Deliver { id, app, dir } => self.on_deliver(node, id, app, dir, now),
                Action::Backplane { to, msg } => {
                    let bytes = msg.wire_bytes();
                    if let BackplaneMsg::RelayData(_) = &msg {
                        self.log.ledger_up.on_backplane_tx();
                    }
                    match self.backplane.send(node, to, bytes, now) {
                        Some(at) => {
                            self.sched.at(
                                at,
                                Event::BackplaneArrive {
                                    from: node,
                                    to,
                                    msg,
                                },
                            );
                        }
                        None => {
                            self.log.backplane_drops += 1;
                            if let BackplaneMsg::RelayData(d) = &msg {
                                self.log.on_relay(d.id, node, true, false);
                            }
                        }
                    }
                }
                Action::Stat(ev) => self.on_stat(node, ev),
            }
        }
    }

    fn on_deliver(&mut self, node: NodeId, id: PacketId, app: Bytes, dir: Direction, now: SimTime) {
        match dir {
            Direction::Downstream => {
                // At the vehicle. Only the instrumented vehicle carries a
                // workload.
                self.log.on_delivered(id);
                self.log.ledger_down.on_delivered();
                if node == self.vehicle {
                    self.with_driver(now, |d, api| d.on_vehicle_rx(&app, api));
                }
            }
            Direction::Upstream => {
                // At the anchor: forward over the wired hop.
                self.log.on_delivered(id);
                self.log.ledger_up.on_delivered();
                self.sched.at(
                    now + self.cfg.wired_delay,
                    Event::WiredUpArrive {
                        payload: app,
                        radio_exit: now,
                    },
                );
            }
        }
    }

    fn on_stat(&mut self, node: NodeId, ev: StatEvent) {
        match ev {
            StatEvent::RelayDecision {
                id,
                dir: _,
                prob,
                relayed,
            } => {
                self.log.on_decision(id, node, prob, relayed);
            }
            StatEvent::AnchorSwitch { .. } => {
                if node == self.vehicle {
                    self.anchor_switches += 1;
                }
            }
            StatEvent::Salvaged { .. } => {
                // Counted at BackplaneArrive (covers the transfer itself).
            }
            StatEvent::RelaySuppressed { .. } | StatEvent::SourceDrop { .. } => {}
        }
    }

    fn with_driver<F>(&mut self, now: SimTime, f: F)
    where
        F: FnOnce(&mut dyn Driver, &mut HostApi),
    {
        let mut driver = self.driver.take().expect("driver present");
        let mut api = HostApi {
            now,
            rng: &mut self.rng_driver,
            cmds: Vec::new(),
        };
        f(driver.as_mut(), &mut api);
        let cmds = api.cmds;
        self.driver = Some(driver);
        for cmd in cmds {
            match cmd {
                HostCmd::SendUpstream(bytes) => {
                    let vehicle = self.vehicle;
                    self.endpoints
                        .get_mut(&vehicle)
                        .expect("vehicle endpoint")
                        .send_app(bytes, None, now);
                    self.pump(vehicle, now);
                }
                HostCmd::SendDownstream(bytes) => {
                    self.sched
                        .at(now + self.cfg.wired_delay, Event::WiredDownArrive(bytes));
                }
                HostCmd::ScheduleTick { chan, at } => {
                    self.sched.at(at.max(now), Event::AppTick(chan));
                }
            }
        }
    }
}

/// Kind of a node in this simulation (diagnostic helper).
pub fn node_kind_name(kind: NodeKind) -> &'static str {
    match kind {
        NodeKind::Vehicle => "vehicle",
        NodeKind::Basestation => "basestation",
        NodeKind::Wired => "wired",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vifi_sim::SimDuration;
    use vifi_testbeds::{dieselnet_ch1, generate_beacon_trace, vanlan};

    fn quick_cfg(workload: WorkloadSpec, secs: u64, seed: u64) -> RunConfig {
        RunConfig {
            workload,
            duration: SimDuration::from_secs(secs),
            seed,
            ..RunConfig::default()
        }
    }

    #[test]
    fn idle_run_beacons_flow() {
        let s = vanlan(1);
        let sim = Simulation::deployment(&s, quick_cfg(WorkloadSpec::Idle, 20, 1));
        let out = sim.run();
        assert!(out.events > 100, "events {}", out.events);
        assert!(out.frames_tx > 100, "beacons on the air: {}", out.frames_tx);
        assert!(matches!(out.report, WorkloadReport::Idle));
    }

    #[test]
    fn cbr_run_delivers_probes() {
        let s = vanlan(1);
        let sim = Simulation::deployment(&s, quick_cfg(WorkloadSpec::paper_cbr(), 120, 2));
        let out = sim.run();
        let stats = match out.report {
            WorkloadReport::Cbr(c) => c,
            other => panic!("wrong report {other:?}"),
        };
        // 120 s at 10 Hz each way (the tick at exactly t = 120 s also
        // fires, hence the +1).
        assert!(
            (1200..=1201).contains(&stats.up.len()),
            "{}",
            stats.up.len()
        );
        assert!(
            (1200..=1201).contains(&stats.down.len()),
            "{}",
            stats.down.len()
        );
        // The van drives through campus in the first two minutes: a good
        // chunk of probes must get through.
        let delivered = stats.total_delivered();
        assert!(delivered > 200, "delivered {delivered}");
        assert!(delivered < 2400, "not everything is reachable");
    }

    #[test]
    fn deterministic_replay() {
        let s = vanlan(1);
        let run = |seed| {
            let sim = Simulation::deployment(&s, quick_cfg(WorkloadSpec::paper_cbr(), 60, seed));
            let out = sim.run();
            match out.report {
                WorkloadReport::Cbr(c) => (c.total_delivered(), out.events, out.frames_tx),
                _ => unreachable!(),
            }
        };
        assert_eq!(run(7), run(7), "same seed, same run");
        assert_ne!(run(7), run(8), "different seed, different run");
    }

    #[test]
    fn vifi_beats_brr_on_cbr_delivery() {
        let s = vanlan(1);
        let run = |vifi: VifiConfig| {
            let cfg = RunConfig {
                vifi,
                ..quick_cfg(WorkloadSpec::paper_cbr(), 180, 3)
            };
            let out = Simulation::deployment(&s, cfg).run();
            match out.report {
                WorkloadReport::Cbr(c) => c.total_delivered(),
                _ => unreachable!(),
            }
        };
        let vifi = run(VifiConfig::default().without_retx());
        let brr = run(VifiConfig::brr_baseline().without_retx());
        assert!(
            vifi > brr,
            "diversity must deliver more: ViFi {vifi} vs BRR {brr}"
        );
    }

    #[test]
    fn relaying_happens_and_is_logged() {
        let s = vanlan(1);
        let out = Simulation::deployment(&s, quick_cfg(WorkloadSpec::paper_cbr(), 180, 4)).run();
        let relays: usize = out.log.records.iter().map(|r| r.relays.len()).sum();
        assert!(relays > 0, "some packets must be relayed");
        let decisions: usize = out.log.records.iter().map(|r| r.decisions.len()).sum();
        assert!(decisions >= relays);
        // Upstream relays ride the backplane, downstream ones the air.
        let up_air = out
            .log
            .records
            .iter()
            .filter(|r| r.dir == Direction::Upstream)
            .flat_map(|r| r.relays.iter())
            .filter(|f| !f.via_backplane)
            .count();
        assert_eq!(up_air, 0, "upstream relays never use the air");
    }

    #[test]
    fn anchor_switches_under_mobility() {
        let s = vanlan(1);
        let out = Simulation::deployment(&s, quick_cfg(WorkloadSpec::Idle, 200, 5)).run();
        assert!(
            out.anchor_switches >= 1,
            "driving across campus must switch anchors"
        );
    }

    #[test]
    fn trace_driven_mode_runs() {
        let s = dieselnet_ch1();
        let veh = s.vehicle_ids()[0];
        let trace = generate_beacon_trace(&s, veh, SimDuration::from_secs(150), 10, &Rng::new(6));
        let out =
            Simulation::trace_driven(&trace, quick_cfg(WorkloadSpec::paper_cbr(), 150, 6)).run();
        let stats = match out.report {
            WorkloadReport::Cbr(c) => c,
            _ => unreachable!(),
        };
        assert!(stats.total_delivered() > 50, "{}", stats.total_delivered());
    }

    #[test]
    fn tcp_workload_completes_transfers() {
        let s = vanlan(1);
        let out = Simulation::deployment(&s, quick_cfg(WorkloadSpec::paper_tcp(), 180, 7)).run();
        let stats = match out.report {
            WorkloadReport::Tcp(t) => t,
            _ => unreachable!(),
        };
        let total = stats.down.transfer_times.len() + stats.up.transfer_times.len();
        assert!(total > 3, "completed transfers {total}");
    }

    #[test]
    fn voip_workload_scores() {
        let s = vanlan(1);
        let cfg = RunConfig {
            wired_delay: SimDuration::ZERO, // the scorer adds the fixed 40 ms
            ..quick_cfg(WorkloadSpec::Voip, 120, 8)
        };
        let out = Simulation::deployment(&s, cfg).run();
        let stats = match out.report {
            WorkloadReport::Voip(v) => v,
            _ => unreachable!(),
        };
        assert!(!stats.down.scores.is_empty());
        // While on campus some windows must be decent.
        assert!(
            stats.down.scores.iter().any(|w| w.mos > 3.0),
            "some good windows expected"
        );
    }

    #[test]
    fn efficiency_ledgers_populate() {
        let s = vanlan(1);
        let out = Simulation::deployment(&s, quick_cfg(WorkloadSpec::paper_cbr(), 120, 9)).run();
        assert!(out.log.ledger_up.wireless_tx > 0);
        assert!(out.log.ledger_down.wireless_tx > 0);
        let eff_up = out.log.ledger_up.efficiency();
        let eff_down = out.log.ledger_down.efficiency();
        assert!(eff_up > 0.0 && eff_up <= 1.0, "up {eff_up}");
        assert!(eff_down > 0.0 && eff_down <= 1.0, "down {eff_down}");
    }

    #[test]
    fn salvaging_counts_with_tcp() {
        let s = vanlan(1);
        // Long enough to cross anchor changes mid-transfer.
        let out = Simulation::deployment(&s, quick_cfg(WorkloadSpec::paper_tcp(), 400, 10)).run();
        // Salvage may legitimately be zero on some seeds, but switches
        // must happen; assert the machinery at least ran.
        assert!(out.anchor_switches > 0);
        let _ = out.salvaged; // smoke: field exists and is consistent
    }
}
