//! Application workload drivers: the traffic of §3.1/§5.2 (CBR probes),
//! §5.3.1 (short TCP transfers) and §5.3.2 (VoIP).
//!
//! Drivers are deliberately decoupled from the simulator through a tiny
//! command queue (`HostApi`): a driver reacts to deliveries and ticks by
//! queueing sends and future ticks; the simulation executes them. That
//! keeps the drivers unit-testable and the borrow graph trivial.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use vifi_apps::tcp::{TcpConfig, TcpReceiver, TcpSegment, TcpSender};
use vifi_apps::voip::{VoipParams, VoipReport, VoipScorer, VoipSource};
use vifi_sim::{Rng, SimDuration, SimTime};

use crate::fingerprint::{Fingerprint, Fingerprintable};

/// What traffic to run over the link layer.
#[derive(Clone, Debug)]
pub enum WorkloadSpec {
    /// No application traffic (beacons only).
    Idle,
    /// CBR probes in both directions (default: 500 B / 100 ms, §3.1).
    Cbr {
        /// Packet interval.
        interval: SimDuration,
        /// Application payload size.
        size_bytes: u32,
    },
    /// Repeated file transfers (§5.3.1): a fetch loop in each direction,
    /// 10 s no-progress abort.
    Tcp {
        /// Transfer size (10 KB in the paper).
        file_size: u64,
        /// Run the downstream fetch loop.
        down: bool,
        /// Run the upstream fetch loop.
        up: bool,
    },
    /// Bidirectional G.729 VoIP (§5.3.2).
    Voip,
}

impl WorkloadSpec {
    /// The paper's probe workload.
    pub fn paper_cbr() -> Self {
        WorkloadSpec::Cbr {
            interval: SimDuration::from_millis(100),
            size_bytes: 500,
        }
    }

    /// The paper's TCP workload (both directions).
    pub fn paper_tcp() -> Self {
        WorkloadSpec::Tcp {
            file_size: 10 * 1024,
            down: true,
            up: true,
        }
    }
}

/// Commands a driver queues for the simulation to execute.
pub(crate) enum HostCmd {
    /// Send application bytes from the vehicle toward the Internet.
    SendUpstream(Bytes),
    /// Send application bytes from the Internet toward the vehicle
    /// (enters the radio at the current anchor after the wired delay).
    SendDownstream(Bytes),
    /// Wake the driver at `at` on channel `chan`.
    ScheduleTick {
        /// Driver-defined channel.
        chan: u8,
        /// Absolute wake time.
        at: SimTime,
    },
}

/// The driver's view of the host simulation.
pub(crate) struct HostApi<'a> {
    /// Current virtual time.
    pub now: SimTime,
    /// Workload RNG stream.
    #[allow(dead_code)]
    pub rng: &'a mut Rng,
    /// Deferred commands.
    pub cmds: Vec<HostCmd>,
}

impl HostApi<'_> {
    fn up(&mut self, b: Bytes) {
        self.cmds.push(HostCmd::SendUpstream(b));
    }
    fn down(&mut self, b: Bytes) {
        self.cmds.push(HostCmd::SendDownstream(b));
    }
    fn tick(&mut self, chan: u8, at: SimTime) {
        self.cmds.push(HostCmd::ScheduleTick { chan, at });
    }
}

/// A workload driver.
pub(crate) trait Driver: Send {
    /// Called once at simulation start.
    fn start(&mut self, api: &mut HostApi);
    /// A scheduled tick fired.
    fn on_tick(&mut self, chan: u8, api: &mut HostApi);
    /// Application bytes were delivered at the vehicle (downstream).
    fn on_vehicle_rx(&mut self, app: &Bytes, api: &mut HostApi);
    /// Application bytes were delivered at the Internet host (upstream);
    /// `radio_exit` is when the anchor received them (before the wired
    /// hop).
    fn on_internet_rx(&mut self, app: &Bytes, radio_exit: SimTime, api: &mut HostApi);
    /// Final report.
    fn report(&mut self, end: SimTime) -> WorkloadReport;
}

/// Per-workload results.
#[derive(Clone, Debug)]
pub enum WorkloadReport {
    /// No traffic.
    Idle,
    /// CBR probe outcomes.
    Cbr(CbrStats),
    /// TCP transfer outcomes.
    Tcp(TcpStats),
    /// VoIP outcomes.
    Voip(VoipStats),
}

impl WorkloadReport {
    /// The CBR stats, if this is a CBR report (fleet aggregation helper).
    pub fn as_cbr(&self) -> Option<&CbrStats> {
        match self {
            WorkloadReport::Cbr(c) => Some(c),
            _ => None,
        }
    }
}

/// Merge per-vehicle CBR reports into one fleet-level [`CbrStats`]: probe
/// outcomes and delays concatenate, so ratios, sessions and delay
/// percentiles over the result describe the fleet as a whole. Non-CBR
/// reports are ignored.
///
/// Pass reports in a stable order (vehicle-id order, as
/// [`crate::RunOutcome::vehicles`] is laid out — the order sharded runs
/// merge into) and the aggregate is as deterministic as the runs.
pub fn aggregate_cbr<'a>(reports: impl IntoIterator<Item = &'a WorkloadReport>) -> CbrStats {
    let mut agg = CbrStats::default();
    for r in reports {
        if let Some(c) = r.as_cbr() {
            agg.merge_from(c);
        }
    }
    agg
}

impl Fingerprintable for WorkloadReport {
    fn fingerprint_into(&self, fp: &mut Fingerprint) {
        match self {
            WorkloadReport::Idle => fp.push_u64(0),
            WorkloadReport::Cbr(c) => {
                fp.push_u64(1);
                c.fingerprint_into(fp);
            }
            WorkloadReport::Tcp(t) => {
                fp.push_u64(2);
                t.fingerprint_into(fp);
            }
            WorkloadReport::Voip(v) => {
                fp.push_u64(3);
                v.fingerprint_into(fp);
            }
        }
    }
}

impl Fingerprintable for CbrStats {
    fn fingerprint_into(&self, fp: &mut Fingerprint) {
        for probes in [&self.up, &self.down] {
            fp.push_len(probes.len());
            for &(at, ok) in probes {
                fp.push_u64(at.as_micros());
                fp.push_bool(ok);
            }
        }
        for delays in [&self.up_delays, &self.down_delays] {
            fp.push_len(delays.len());
            for &d in delays {
                fp.push_f64(d);
            }
        }
    }
}

impl Fingerprintable for TcpStats {
    fn fingerprint_into(&self, fp: &mut Fingerprint) {
        for dir in [&self.down, &self.up] {
            fp.push_len(dir.transfer_times.len());
            for &t in &dir.transfer_times {
                fp.push_f64(t);
            }
            fp.push_len(dir.transfers_per_session.len());
            for &n in &dir.transfers_per_session {
                fp.push_u64(n as u64);
            }
            fp.push_u64(dir.aborts as u64);
        }
    }
}

impl Fingerprintable for VoipStats {
    fn fingerprint_into(&self, fp: &mut Fingerprint) {
        for leg in [&self.down, &self.up] {
            fp.push_len(leg.scores.len());
            for w in &leg.scores {
                fp.push_u64(w.window);
                fp.push_f64(w.loss);
                fp.push_f64(w.delay_ms);
                fp.push_f64(w.mos);
            }
            fp.push_len(leg.sessions.len());
            for s in &leg.sessions {
                fp.push_u64(s.as_micros());
            }
            fp.push_f64(leg.mean_mos);
        }
    }
}

// ---------------------------------------------------------------------
// CBR
// ---------------------------------------------------------------------

/// Outcomes of the CBR probe workload.
#[derive(Clone, Debug, Default)]
pub struct CbrStats {
    /// (sent_at, delivered) per upstream probe.
    pub up: Vec<(SimTime, bool)>,
    /// (sent_at, delivered) per downstream probe.
    pub down: Vec<(SimTime, bool)>,
    /// One-way delays of delivered probes (seconds).
    pub up_delays: Vec<f64>,
    /// Downstream delays.
    pub down_delays: Vec<f64>,
}

impl CbrStats {
    /// Per-interval combined (up+down) reception ratios for session
    /// analysis, at the given aggregation interval.
    pub fn combined_ratios(&self, interval: SimDuration, duration: SimDuration) -> Vec<f64> {
        let n = (duration.as_micros() / interval.as_micros()) as usize;
        let mut delivered = vec![0u32; n];
        let mut expected = vec![0u32; n];
        for &(at, ok) in self.up.iter().chain(self.down.iter()) {
            let idx = at.bin(interval) as usize;
            if idx < n {
                expected[idx] += 1;
                delivered[idx] += ok as u32;
            }
        }
        (0..n)
            .map(|i| {
                if expected[i] == 0 {
                    0.0
                } else {
                    delivered[i] as f64 / expected[i] as f64
                }
            })
            .collect()
    }

    /// Total probes delivered (both directions).
    pub fn total_delivered(&self) -> u64 {
        self.up
            .iter()
            .chain(self.down.iter())
            .filter(|&&(_, ok)| ok)
            .count() as u64
    }

    /// Total probes sent (both directions).
    pub fn total_sent(&self) -> u64 {
        (self.up.len() + self.down.len()) as u64
    }

    /// Append another vehicle's probe outcomes and delays to this one —
    /// the concatenation step of [`aggregate_cbr`], usable directly when
    /// the stats are already in hand rather than behind reports.
    pub fn merge_from(&mut self, other: &CbrStats) {
        self.up.extend_from_slice(&other.up);
        self.down.extend_from_slice(&other.down);
        self.up_delays.extend_from_slice(&other.up_delays);
        self.down_delays.extend_from_slice(&other.down_delays);
    }

    /// Fraction of sent probes delivered (0 when nothing was sent).
    pub fn delivery_ratio(&self) -> f64 {
        let sent = self.total_sent();
        if sent == 0 {
            0.0
        } else {
            self.total_delivered() as f64 / sent as f64
        }
    }
}

pub(crate) struct CbrDriver {
    interval: SimDuration,
    size_bytes: u32,
    next_seq_up: u64,
    next_seq_down: u64,
    /// seq → index into stats vectors.
    stats: CbrStats,
}

const CBR_CHAN_UP: u8 = 0;
const CBR_CHAN_DOWN: u8 = 1;

impl CbrDriver {
    pub fn new(interval: SimDuration, size_bytes: u32) -> Self {
        assert!(size_bytes >= 16, "CBR payload carries seq + timestamp");
        CbrDriver {
            interval,
            size_bytes,
            next_seq_up: 0,
            next_seq_down: 0,
            stats: CbrStats::default(),
        }
    }

    fn encode(&self, seq: u64, at: SimTime) -> Bytes {
        let mut b = BytesMut::with_capacity(self.size_bytes as usize);
        b.put_u64_le(seq);
        b.put_u64_le(at.as_micros());
        b.resize(self.size_bytes as usize, 0);
        b.freeze()
    }

    fn decode(app: &Bytes) -> Option<(u64, SimTime)> {
        if app.len() < 16 {
            return None;
        }
        let mut s = &app[..];
        let seq = s.get_u64_le();
        let at = SimTime::from_micros(s.get_u64_le());
        Some((seq, at))
    }
}

impl Driver for CbrDriver {
    fn start(&mut self, api: &mut HostApi) {
        api.tick(CBR_CHAN_UP, api.now);
        api.tick(CBR_CHAN_DOWN, api.now);
    }

    fn on_tick(&mut self, chan: u8, api: &mut HostApi) {
        match chan {
            CBR_CHAN_UP => {
                let seq = self.next_seq_up;
                self.next_seq_up += 1;
                let payload = self.encode(seq, api.now);
                self.stats.up.push((api.now, false));
                api.up(payload);
                api.tick(CBR_CHAN_UP, api.now + self.interval);
            }
            CBR_CHAN_DOWN => {
                let seq = self.next_seq_down;
                self.next_seq_down += 1;
                let payload = self.encode(seq, api.now);
                self.stats.down.push((api.now, false));
                api.down(payload);
                api.tick(CBR_CHAN_DOWN, api.now + self.interval);
            }
            _ => unreachable!("unknown CBR channel"),
        }
    }

    fn on_vehicle_rx(&mut self, app: &Bytes, api: &mut HostApi) {
        if let Some((seq, sent)) = Self::decode(app) {
            if let Some(e) = self.stats.down.get_mut(seq as usize) {
                if !e.1 {
                    e.1 = true;
                    self.stats
                        .down_delays
                        .push(api.now.saturating_since(sent).as_secs_f64());
                }
            }
        }
    }

    fn on_internet_rx(&mut self, app: &Bytes, radio_exit: SimTime, _api: &mut HostApi) {
        if let Some((seq, sent)) = Self::decode(app) {
            if let Some(e) = self.stats.up.get_mut(seq as usize) {
                if !e.1 {
                    e.1 = true;
                    self.stats
                        .up_delays
                        .push(radio_exit.saturating_since(sent).as_secs_f64());
                }
            }
        }
    }

    fn report(&mut self, _end: SimTime) -> WorkloadReport {
        WorkloadReport::Cbr(self.stats.clone())
    }
}

// ---------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------

/// Outcomes of the repeated-transfer workload (per direction).
#[derive(Clone, Debug, Default)]
pub struct TcpDirStats {
    /// Completed transfer durations, seconds.
    pub transfer_times: Vec<f64>,
    /// Completed transfers per session (sessions end at an abort or at
    /// run end).
    pub transfers_per_session: Vec<u32>,
    /// Aborted (no progress for 10 s) transfer attempts.
    pub aborts: u32,
}

impl TcpDirStats {
    /// Median completed-transfer time, seconds.
    pub fn median_time(&self) -> f64 {
        vifi_metrics::median(&self.transfer_times)
    }

    /// Mean completed transfers per session, over sessions with at least
    /// one completed transfer. Repeated aborts while the vehicle is out
    /// of radio coverage produce empty back-to-back "sessions" that the
    /// paper's deployment (which measures during drive-bys) never sees;
    /// counting them would just measure the dead-air fraction of the lap.
    pub fn mean_per_session(&self) -> f64 {
        let nonempty: Vec<f64> = self
            .transfers_per_session
            .iter()
            .filter(|&&x| x > 0)
            .map(|&x| x as f64)
            .collect();
        vifi_metrics::mean(&nonempty)
    }
}

/// Both directions.
#[derive(Clone, Debug, Default)]
pub struct TcpStats {
    /// Vehicle-fetches-from-server loop.
    pub down: TcpDirStats,
    /// Server-fetches-from-vehicle loop.
    pub up: TcpDirStats,
}

/// The 10-second no-progress abort rule of §5.3.1.
const TCP_ABORT: SimDuration = SimDuration::from_secs(10);
const TCP_CHAN: u8 = 0;

/// Tag bytes multiplexing the two transfer loops over one link.
const TAG_DOWN: u8 = 0;
const TAG_UP: u8 = 1;

struct TransferLoop {
    /// TAG_DOWN: sender at the Internet; TAG_UP: sender at the vehicle.
    tag: u8,
    file_size: u64,
    sender: TcpSender,
    receiver: TcpReceiver,
    started: SimTime,
    stats: TcpDirStats,
    session_count: u32,
}

impl TransferLoop {
    fn new(tag: u8, file_size: u64, now: SimTime) -> Self {
        TransferLoop {
            tag,
            file_size,
            sender: TcpSender::new(TcpConfig::default(), file_size, now),
            receiver: TcpReceiver::new(),
            started: now,
            stats: TcpDirStats::default(),
            session_count: 0,
        }
    }

    fn restart(&mut self, now: SimTime) {
        self.sender = TcpSender::new(TcpConfig::default(), self.file_size, now);
        self.receiver = TcpReceiver::new();
        self.started = now;
    }

    fn send_segment(&self, seg: TcpSegment, api: &mut HostApi, from_sender: bool) {
        let mut b = BytesMut::with_capacity(20);
        b.put_u8(self.tag);
        b.extend_from_slice(&seg.encode());
        // Pad segments to their true wire size so the MAC airtime and the
        // channel see realistic frames.
        let wire = seg.wire_bytes() as usize;
        if b.len() < wire {
            b.resize(wire, 0);
        }
        let payload = b.freeze();
        // The sender's segments flow sender→receiver; replies the other
        // way. Down-loop sender is at the Internet.
        let downstream = (self.tag == TAG_DOWN) == from_sender;
        if downstream {
            api.down(payload);
        } else {
            api.up(payload);
        }
    }

    fn pump_sender(&mut self, api: &mut HostApi) {
        for seg in self.sender.poll_tx(api.now) {
            self.send_segment(seg, api, true);
        }
    }

    /// Handle a segment arriving at the sender side.
    fn sender_rx(&mut self, seg: TcpSegment, api: &mut HostApi) {
        self.sender.on_segment(seg, api.now);
        if self.sender.is_complete() {
            let d = self.sender.duration().unwrap().as_secs_f64();
            self.stats.transfer_times.push(d);
            self.session_count += 1;
            self.restart(api.now);
        }
        self.pump_sender(api);
    }

    /// Handle a segment arriving at the receiver side.
    fn receiver_rx(&mut self, seg: TcpSegment, api: &mut HostApi) {
        for reply in self.receiver.on_segment(seg, api.now) {
            self.send_segment(reply, api, false);
        }
    }

    fn check_abort(&mut self, now: SimTime) {
        let last = self.sender.last_progress().max(self.started);
        if !self.sender.is_complete() && now.saturating_since(last) >= TCP_ABORT {
            // §5.3.1: terminate and start afresh; the abort ends a session.
            self.stats.aborts += 1;
            self.stats.transfers_per_session.push(self.session_count);
            self.session_count = 0;
            self.restart(now);
        }
    }

    fn on_timer(&mut self, api: &mut HostApi) {
        self.sender.on_timer(api.now);
        self.check_abort(api.now);
        self.pump_sender(api);
    }

    fn next_deadline(&self, now: SimTime) -> SimTime {
        let abort_at = self.sender.last_progress().max(self.started) + TCP_ABORT;
        match self.sender.next_timer() {
            Some(t) => t.min(abort_at),
            None => abort_at,
        }
        .max(now + SimDuration::from_millis(1))
    }

    fn finish(&mut self, _end: SimTime) -> TcpDirStats {
        self.stats.transfers_per_session.push(self.session_count);
        self.stats.clone()
    }
}

pub(crate) struct TcpDriver {
    down: Option<TransferLoop>,
    up: Option<TransferLoop>,
}

impl TcpDriver {
    pub fn new(file_size: u64, down: bool, up: bool, now: SimTime) -> Self {
        TcpDriver {
            down: down.then(|| TransferLoop::new(TAG_DOWN, file_size, now)),
            up: up.then(|| TransferLoop::new(TAG_UP, file_size, now)),
        }
    }

    fn reschedule(&self, api: &mut HostApi) {
        let mut next = SimTime::MAX;
        for l in [&self.down, &self.up].into_iter().flatten() {
            next = next.min(l.next_deadline(api.now));
        }
        if next != SimTime::MAX {
            api.tick(TCP_CHAN, next);
        }
    }
}

impl Driver for TcpDriver {
    fn start(&mut self, api: &mut HostApi) {
        if let Some(l) = &mut self.down {
            l.pump_sender(api);
        }
        if let Some(l) = &mut self.up {
            l.pump_sender(api);
        }
        self.reschedule(api);
    }

    fn on_tick(&mut self, _chan: u8, api: &mut HostApi) {
        if let Some(l) = &mut self.down {
            l.on_timer(api);
        }
        if let Some(l) = &mut self.up {
            l.on_timer(api);
        }
        self.reschedule(api);
    }

    fn on_vehicle_rx(&mut self, app: &Bytes, api: &mut HostApi) {
        if app.is_empty() {
            return;
        }
        let tag = app[0];
        let Some(seg) = TcpSegment::decode(&app[1..]) else {
            return;
        };
        match tag {
            // Down-loop traffic arriving at the vehicle = data for the
            // receiver.
            TAG_DOWN => {
                if let Some(l) = &mut self.down {
                    l.receiver_rx(seg, api);
                }
            }
            // Up-loop traffic arriving at the vehicle = ACKs for the
            // sender.
            TAG_UP => {
                if let Some(l) = &mut self.up {
                    l.sender_rx(seg, api);
                }
            }
            _ => {}
        }
        self.reschedule(api);
    }

    fn on_internet_rx(&mut self, app: &Bytes, _radio_exit: SimTime, api: &mut HostApi) {
        if app.is_empty() {
            return;
        }
        let tag = app[0];
        let Some(seg) = TcpSegment::decode(&app[1..]) else {
            return;
        };
        match tag {
            TAG_DOWN => {
                if let Some(l) = &mut self.down {
                    l.sender_rx(seg, api);
                }
            }
            TAG_UP => {
                if let Some(l) = &mut self.up {
                    l.receiver_rx(seg, api);
                }
            }
            _ => {}
        }
        self.reschedule(api);
    }

    fn report(&mut self, end: SimTime) -> WorkloadReport {
        WorkloadReport::Tcp(TcpStats {
            down: self
                .down
                .as_mut()
                .map(|l| l.finish(end))
                .unwrap_or_default(),
            up: self.up.as_mut().map(|l| l.finish(end)).unwrap_or_default(),
        })
    }
}

// ---------------------------------------------------------------------
// VoIP
// ---------------------------------------------------------------------

/// Outcomes of the VoIP workload.
#[derive(Clone, Debug)]
pub struct VoipStats {
    /// Downstream (Internet → vehicle) call leg.
    pub down: VoipReport,
    /// Upstream (vehicle → Internet) call leg.
    pub up: VoipReport,
}

impl VoipStats {
    /// Median uninterrupted session length across both legs, seconds —
    /// the Fig. 11 metric (a conversation needs both directions; we score
    /// the stricter leg).
    pub fn median_session_secs(&self) -> f64 {
        self.down
            .median_session()
            .min(self.up.median_session())
            .as_secs_f64()
    }

    /// Mean of 3-second MoS scores across both legs.
    pub fn mean_mos(&self) -> f64 {
        (self.down.mean_mos + self.up.mean_mos) / 2.0
    }
}

const VOIP_CHAN_UP: u8 = 0;
const VOIP_CHAN_DOWN: u8 = 1;

pub(crate) struct VoipDriver {
    params: VoipParams,
    src_up: VoipSource,
    src_down: VoipSource,
    score_up: VoipScorer,
    score_down: VoipScorer,
    /// Dedup of application-level deliveries: salvaging legitimately
    /// re-sends a payload under a fresh link-layer id, so the same codec
    /// packet can arrive twice.
    seen_up: std::collections::HashSet<u64>,
    seen_down: std::collections::HashSet<u64>,
}

impl VoipDriver {
    pub fn new(params: VoipParams, start: SimTime) -> Self {
        VoipDriver {
            params,
            src_up: VoipSource::new(params, start),
            src_down: VoipSource::new(params, start),
            score_up: VoipScorer::new(params),
            score_down: VoipScorer::new(params),
            seen_up: Default::default(),
            seen_down: Default::default(),
        }
    }

    fn encode(seq: u64, at: SimTime, size: u32) -> Bytes {
        let mut b = BytesMut::with_capacity(size as usize);
        b.put_u64_le(seq);
        b.put_u64_le(at.as_micros());
        b.resize(size as usize, 0);
        b.freeze()
    }

    fn decode(app: &Bytes) -> Option<(u64, SimTime)> {
        if app.len() < 16 {
            return None;
        }
        let mut s = &app[..16];
        let seq = s.get_u64_le();
        let at = SimTime::from_micros(s.get_u64_le());
        Some((seq, at))
    }
}

impl Driver for VoipDriver {
    fn start(&mut self, api: &mut HostApi) {
        api.tick(VOIP_CHAN_UP, api.now);
        api.tick(VOIP_CHAN_DOWN, api.now);
    }

    fn on_tick(&mut self, chan: u8, api: &mut HostApi) {
        let size = self.params.payload_bytes.max(16);
        match chan {
            VOIP_CHAN_UP => {
                for (seq, at) in self.src_up.poll(api.now) {
                    self.score_up.on_sent(at);
                    api.up(Self::encode(seq, at, size));
                }
                api.tick(VOIP_CHAN_UP, self.src_up.next_at());
            }
            VOIP_CHAN_DOWN => {
                for (seq, at) in self.src_down.poll(api.now) {
                    self.score_down.on_sent(at);
                    api.down(Self::encode(seq, at, size));
                }
                api.tick(VOIP_CHAN_DOWN, self.src_down.next_at());
            }
            _ => unreachable!("unknown VoIP channel"),
        }
    }

    fn on_vehicle_rx(&mut self, app: &Bytes, api: &mut HostApi) {
        if let Some((seq, sent)) = Self::decode(app) {
            if self.seen_down.insert(seq) {
                self.score_down.on_delivered(sent, api.now);
            }
        }
    }

    fn on_internet_rx(&mut self, app: &Bytes, radio_exit: SimTime, _api: &mut HostApi) {
        if let Some((seq, sent)) = Self::decode(app) {
            if self.seen_up.insert(seq) {
                self.score_up.on_delivered(sent, radio_exit);
            }
        }
    }

    fn report(&mut self, _end: SimTime) -> WorkloadReport {
        WorkloadReport::Voip(VoipStats {
            down: self.score_down.report(),
            up: self.score_up.report(),
        })
    }
}

/// Idle driver.
pub(crate) struct IdleDriver;

impl Driver for IdleDriver {
    fn start(&mut self, _api: &mut HostApi) {}
    fn on_tick(&mut self, _chan: u8, _api: &mut HostApi) {}
    fn on_vehicle_rx(&mut self, _app: &Bytes, _api: &mut HostApi) {}
    fn on_internet_rx(&mut self, _app: &Bytes, _radio_exit: SimTime, _api: &mut HostApi) {}
    fn report(&mut self, _end: SimTime) -> WorkloadReport {
        WorkloadReport::Idle
    }
}

/// Build the driver for a spec.
pub(crate) fn build_driver(spec: &WorkloadSpec, start: SimTime) -> Box<dyn Driver> {
    match spec {
        WorkloadSpec::Idle => Box::new(IdleDriver),
        WorkloadSpec::Cbr {
            interval,
            size_bytes,
        } => Box::new(CbrDriver::new(*interval, *size_bytes)),
        WorkloadSpec::Tcp {
            file_size,
            down,
            up,
        } => Box::new(TcpDriver::new(*file_size, *down, *up, start)),
        WorkloadSpec::Voip => Box::new(VoipDriver::new(VoipParams::default(), start)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn api(now_ms: u64, rng: &mut Rng) -> HostApi<'_> {
        HostApi {
            now: SimTime::from_millis(now_ms),
            rng,
            cmds: Vec::new(),
        }
    }

    #[test]
    fn cbr_emits_on_schedule() {
        let mut rng = Rng::new(1);
        let mut d = CbrDriver::new(SimDuration::from_millis(100), 500);
        let mut a = api(0, &mut rng);
        d.start(&mut a);
        assert_eq!(a.cmds.len(), 2, "two initial ticks");
        let mut a = api(0, &mut rng);
        d.on_tick(CBR_CHAN_UP, &mut a);
        let sends = a
            .cmds
            .iter()
            .filter(|c| matches!(c, HostCmd::SendUpstream(_)))
            .count();
        assert_eq!(sends, 1);
        // Next tick scheduled at +100 ms.
        assert!(a.cmds.iter().any(|c| matches!(
            c,
            HostCmd::ScheduleTick { chan: CBR_CHAN_UP, at } if *at == SimTime::from_millis(100)
        )));
    }

    #[test]
    fn cbr_accounts_delivery_once() {
        let mut rng = Rng::new(1);
        let mut d = CbrDriver::new(SimDuration::from_millis(100), 500);
        let mut a = api(0, &mut rng);
        d.on_tick(CBR_CHAN_UP, &mut a);
        let payload = a
            .cmds
            .iter()
            .find_map(|c| match c {
                HostCmd::SendUpstream(b) => Some(b.clone()),
                _ => None,
            })
            .unwrap();
        let mut a = api(50, &mut rng);
        d.on_internet_rx(&payload, SimTime::from_millis(40), &mut a);
        d.on_internet_rx(&payload, SimTime::from_millis(45), &mut a); // dup
        let r = match d.report(SimTime::from_secs(1)) {
            WorkloadReport::Cbr(c) => c,
            _ => unreachable!(),
        };
        assert_eq!(r.total_delivered(), 1);
        assert_eq!(r.up_delays.len(), 1);
        assert!((r.up_delays[0] - 0.040).abs() < 1e-9);
    }

    #[test]
    fn cbr_ratio_series() {
        let mut stats = CbrStats::default();
        // Second 0: 10 up sent, all delivered; second 1: 10 sent, none.
        for i in 0..10 {
            stats.up.push((SimTime::from_millis(i * 100), true));
        }
        for i in 10..20 {
            stats.up.push((SimTime::from_millis(i * 100), false));
        }
        let r = stats.combined_ratios(SimDuration::from_secs(1), SimDuration::from_secs(2));
        assert_eq!(r, vec![1.0, 0.0]);
    }

    #[test]
    fn tcp_driver_round_trip_over_perfect_pipe() {
        // Shuttle commands between driver-side endpoints by hand; the
        // "network" is instantaneous and lossless.
        let mut rng = Rng::new(2);
        let mut d = TcpDriver::new(10_240, true, false, SimTime::ZERO);
        let mut now = 0u64;
        let mut a = api(now, &mut rng);
        d.start(&mut a);
        let mut cmds = a.cmds;
        let mut completed_at = None;
        for _ in 0..10_000 {
            now += 1;
            let mut next_cmds = Vec::new();
            let mut rng2 = Rng::new(3);
            for cmd in cmds {
                let mut a = api(now, &mut rng2);
                match cmd {
                    HostCmd::SendDownstream(b) => d.on_vehicle_rx(&b, &mut a),
                    HostCmd::SendUpstream(b) => d.on_internet_rx(&b, a.now, &mut a),
                    HostCmd::ScheduleTick { .. } => {
                        // Fire ticks immediately in this toy harness.
                        d.on_tick(TCP_CHAN, &mut a);
                    }
                }
                next_cmds.extend(a.cmds);
            }
            let r = match d.report(SimTime::from_millis(now)) {
                WorkloadReport::Tcp(t) => t,
                _ => unreachable!(),
            };
            // report() pushes a session entry; rebuild driver state by
            // checking transfer counts only.
            if !r.down.transfer_times.is_empty() {
                completed_at = Some(now);
                break;
            }
            // undo report()'s session push (test-only introspection)
            if let Some(l) = &mut d.down {
                l.stats.transfers_per_session.pop();
            }
            if let Some(l) = &mut d.up {
                l.stats.transfers_per_session.pop();
            }
            cmds = next_cmds;
            if cmds.is_empty() {
                break;
            }
        }
        assert!(completed_at.is_some(), "transfer should complete");
    }

    #[test]
    fn voip_driver_scores_both_legs() {
        let mut rng = Rng::new(4);
        let mut d = VoipDriver::new(VoipParams::default(), SimTime::ZERO);
        // Generate 3 s of packets, deliver everything promptly.
        for ms in (0..3000).step_by(20) {
            let mut a = api(ms, &mut rng);
            d.on_tick(VOIP_CHAN_UP, &mut a);
            d.on_tick(VOIP_CHAN_DOWN, &mut a);
            for cmd in a.cmds {
                let mut a2 = api(ms + 10, &mut rng);
                match cmd {
                    HostCmd::SendUpstream(b) => {
                        d.on_internet_rx(&b, SimTime::from_millis(ms + 10), &mut a2)
                    }
                    HostCmd::SendDownstream(b) => d.on_vehicle_rx(&b, &mut a2),
                    HostCmd::ScheduleTick { .. } => {}
                }
            }
        }
        let r = match d.report(SimTime::from_secs(3)) {
            WorkloadReport::Voip(v) => v,
            _ => unreachable!(),
        };
        assert_eq!(r.down.sessions.len(), 1);
        assert_eq!(r.up.sessions.len(), 1);
        assert!(r.mean_mos() > 3.5, "clean call MoS {}", r.mean_mos());
        assert!(r.median_session_secs() >= 3.0);
    }
}
