//! Packet-level run logs and the paper's derived statistics.
//!
//! The runtime records one [`TxRecord`] per *source transmission* (a data
//! frame with `relayed_by == None`), then attaches to it: which
//! auxiliaries heard it, whether the destination heard it, who heard the
//! destination's ACK, every auxiliary's relay decision, and each relay's
//! fate. Everything the paper derives from its packet logs comes from
//! these records:
//!
//! * **Table 1** (rows A1–C4) — [`Table1::from_log`];
//! * **Table 2** (false positives/negatives per coordination scheme) —
//!   [`Table2Row::from_log`];
//! * **Fig. 12** (medium-use efficiency incl. the PerfectRelay oracle) —
//!   [`RunLog::efficiency`] and [`PerfectRelayOutcome::from_log`].

use std::collections::HashMap;

use vifi_core::{Direction, PacketId};
use vifi_metrics::EfficiencyLedger;
use vifi_phy::NodeId;
use vifi_sim::SimTime;

use crate::fingerprint::{Fingerprint, Fingerprintable};

/// The fate of one relay of one packet.
#[derive(Clone, Debug)]
pub struct RelayFate {
    /// The relaying auxiliary.
    pub by: NodeId,
    /// Upstream relays ride the backplane; downstream relays the air.
    pub via_backplane: bool,
    /// Whether the relayed copy reached the flow destination.
    pub reached_dst: bool,
}

/// Everything observed about one source transmission.
#[derive(Clone, Debug)]
pub struct TxRecord {
    /// Packet identity.
    pub id: PacketId,
    /// Which attempt this is (0 = first transmission).
    pub attempt: u32,
    /// Direction.
    pub dir: Direction,
    /// Time the frame left the source.
    pub at: SimTime,
    /// The auxiliary set announced by the vehicle at transmission time.
    pub aux_set: Vec<NodeId>,
    /// Auxiliaries (members of `aux_set`) that received this transmission.
    pub aux_heard: Vec<NodeId>,
    /// Whether the flow destination received this transmission.
    pub dst_heard: bool,
    /// Auxiliaries that later heard an ACK for this packet.
    pub ack_heard_by: Vec<NodeId>,
    /// Relay decisions made for this packet after this transmission:
    /// `(aux, probability, relayed)`.
    pub decisions: Vec<(NodeId, f64, bool)>,
    /// Fates of performed relays.
    pub relays: Vec<RelayFate>,
    /// Whether the packet (by id) was ultimately delivered to the
    /// destination by any path.
    pub delivered: bool,
}

/// The full log of a run.
#[derive(Default)]
pub struct RunLog {
    /// Source-transmission records, in transmission order.
    pub records: Vec<TxRecord>,
    /// Record indices per packet id, in creation order (ACKs, decisions
    /// and relays attach to the last one; delivery marks all of them).
    by_id: HashMap<PacketId, Vec<usize>>,
    /// Per-second size of the vehicle's auxiliary set (Table 1 row A1).
    pub aux_sizes: Vec<(u64, usize)>,
    /// Wireless data transmissions per direction (sources + wireless
    /// relays + retransmissions) — the Fig. 12 denominator.
    pub ledger_up: EfficiencyLedger,
    /// Downstream ledger.
    pub ledger_down: EfficiencyLedger,
    /// Backplane messages dropped by the capacity model.
    pub backplane_drops: u64,
}

impl RunLog {
    /// Fresh log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a source transmission.
    pub fn on_source_tx(
        &mut self,
        id: PacketId,
        dir: Direction,
        at: SimTime,
        aux_set: Vec<NodeId>,
        aux_heard: Vec<NodeId>,
        dst_heard: bool,
    ) {
        let indices = self.by_id.entry(id).or_default();
        let attempt = indices
            .last()
            .map(|&i| self.records[i].attempt + 1)
            .unwrap_or(0);
        let rec = TxRecord {
            id,
            attempt,
            dir,
            at,
            aux_set,
            aux_heard,
            dst_heard,
            ack_heard_by: Vec::new(),
            decisions: Vec::new(),
            relays: Vec::new(),
            delivered: false,
        };
        indices.push(self.records.len());
        self.records.push(rec);
    }

    fn latest_mut(&mut self, id: PacketId) -> Option<&mut TxRecord> {
        let &i = self.by_id.get(&id)?.last()?;
        self.records.get_mut(i)
    }

    /// Record which auxiliaries heard an ACK for `id`.
    pub fn on_ack_heard(&mut self, id: PacketId, heard_by: &[NodeId]) {
        if let Some(r) = self.latest_mut(id) {
            // Small batches keep the branch-free linear scan; large ones
            // would go quadratic in `contains` checks, so membership is
            // resolved through a sorted copy of the (immutable) aux set
            // plus a hash set of already-attached auxiliaries. Both paths
            // push in `heard_by` order, so output is bit-identical.
            if r.aux_set.len() * heard_by.len() <= 64 {
                for n in heard_by {
                    if r.aux_set.contains(n) && !r.ack_heard_by.contains(n) {
                        r.ack_heard_by.push(*n);
                    }
                }
            } else {
                let mut aux_sorted = r.aux_set.clone();
                aux_sorted.sort_unstable();
                let mut attached: std::collections::HashSet<NodeId> =
                    r.ack_heard_by.iter().copied().collect();
                for n in heard_by {
                    if aux_sorted.binary_search(n).is_ok() && attached.insert(*n) {
                        r.ack_heard_by.push(*n);
                    }
                }
            }
        }
    }

    /// Record an auxiliary's relay decision.
    pub fn on_decision(&mut self, id: PacketId, aux: NodeId, prob: f64, relayed: bool) {
        if let Some(r) = self.latest_mut(id) {
            r.decisions.push((aux, prob, relayed));
        }
    }

    /// Record the fate of a performed relay.
    pub fn on_relay(&mut self, id: PacketId, by: NodeId, via_backplane: bool, reached: bool) {
        if let Some(r) = self.latest_mut(id) {
            r.relays.push(RelayFate {
                by,
                via_backplane,
                reached_dst: reached,
            });
        }
    }

    /// Record an application-level delivery of `id` at the destination.
    pub fn on_delivered(&mut self, id: PacketId) {
        // Mark every transmission of this id (delivery is per packet) —
        // O(attempts of the id) via the per-id index list, not a scan of
        // the whole log.
        if let Some(indices) = self.by_id.get(&id) {
            for &i in indices {
                self.records[i].delivered = true;
            }
        }
    }

    /// Record the vehicle's aux-set size at a 1-second sample point.
    pub fn on_aux_sample(&mut self, sec: u64, size: usize) {
        if self.aux_sizes.last().map(|&(s, _)| s) != Some(sec) {
            self.aux_sizes.push((sec, size));
        }
    }

    /// The efficiency ledger for a direction.
    pub fn efficiency(&self, dir: Direction) -> &EfficiencyLedger {
        match dir {
            Direction::Upstream => &self.ledger_up,
            Direction::Downstream => &self.ledger_down,
        }
    }

    /// Rewrite every node id in the log through `f` (packet origins, aux
    /// sets, relay decisions, relay fates). Sharded runs simulate each
    /// vehicle in a re-densified sub-scenario; this maps the instrumented
    /// shard's log back into the parent scenario's id space so merged
    /// outcomes read like sequential ones. The internal per-id record
    /// index is rebuilt because packet ids embed their origin node.
    pub fn remap_nodes(&mut self, f: impl Fn(NodeId) -> NodeId) {
        for r in &mut self.records {
            r.id.origin = f(r.id.origin);
            for n in r
                .aux_set
                .iter_mut()
                .chain(r.aux_heard.iter_mut())
                .chain(r.ack_heard_by.iter_mut())
            {
                *n = f(*n);
            }
            for d in &mut r.decisions {
                d.0 = f(d.0);
            }
            for fate in &mut r.relays {
                fate.by = f(fate.by);
            }
        }
        let remapped: HashMap<PacketId, Vec<usize>> = self
            .by_id
            .drain()
            .map(|(mut id, idx)| {
                id.origin = f(id.origin);
                (id, idx)
            })
            .collect();
        self.by_id = remapped;
    }

    fn dir_records(&self, dir: Direction) -> impl Iterator<Item = &TxRecord> {
        self.records.iter().filter(move |r| r.dir == dir)
    }

    fn ledger_mut(&mut self, dir: Direction) -> &mut EfficiencyLedger {
        match dir {
            Direction::Upstream => &mut self.ledger_up,
            Direction::Downstream => &mut self.ledger_down,
        }
    }

    /// Replay this (finished) log as a stream of [`LogSink`] events, in
    /// record-creation order.
    ///
    /// Feeding the events back into a fresh `RunLog` reproduces this log
    /// bit-for-bit; feeding them into a
    /// [`BinaryRunLog`](crate::binlog::BinaryRunLog) serializes the run as
    /// a compact binary trace. Attachments are emitted right after their
    /// record (stamped with the record's transmission time); the delivery
    /// mark for an id is emitted after the last record of the id the live
    /// run marked — delivered flags are prefix-true per id, so one mark
    /// lands on exactly the same records. [`LogSink::retire`] follows the
    /// final record of each id so streaming consumers can drop per-id
    /// state, and ledgers arrive once, additively, at the end.
    pub fn replay_into<S: LogSink>(&self, sink: &mut S) {
        for (i, r) in self.records.iter().enumerate() {
            sink.source_tx(
                r.at,
                r.id,
                r.dir,
                r.aux_set.clone(),
                r.aux_heard.clone(),
                r.dst_heard,
            );
            if !r.ack_heard_by.is_empty() {
                sink.ack_attach(r.at, r.id, &r.ack_heard_by);
            }
            for &(aux, prob, relayed) in &r.decisions {
                sink.decision(r.at, r.id, aux, prob, relayed);
            }
            for f in &r.relays {
                sink.relay(r.at, r.id, f.by, f.via_backplane, f.reached_dst);
            }
            let indices = &self.by_id[&r.id];
            let pos = indices
                .binary_search(&i)
                .expect("per-id index list covers every record");
            let last_of_id = pos + 1 == indices.len();
            let next_delivered = !last_of_id && self.records[indices[pos + 1]].delivered;
            if r.delivered && !next_delivered {
                sink.deliver_mark(r.at, r.id);
            }
            if last_of_id {
                sink.retire(r.at, r.id);
            }
        }
        for &(sec, size) in &self.aux_sizes {
            sink.aux_sample(SimTime::from_millis(sec * 1000), sec, size);
        }
        sink.ledger_totals(
            [
                self.ledger_up.wireless_tx,
                self.ledger_up.backplane_tx,
                self.ledger_up.ack_tx,
                self.ledger_up.delivered,
            ],
            [
                self.ledger_down.wireless_tx,
                self.ledger_down.backplane_tx,
                self.ledger_down.ack_tx,
                self.ledger_down.delivered,
            ],
            self.backplane_drops,
        );
    }
}

/// A consumer of the runtime's logging events.
///
/// The coupled engine buffers per-shard log operations and applies them in
/// canonical `(time, lane, seq)` order at run end; this trait is the
/// surface it applies them *to*. [`RunLog`] implements it by mutating its
/// in-memory records, [`BinaryRunLog`](crate::binlog::BinaryRunLog) by
/// appending length-prefixed binary records to a byte stream — same event
/// sequence, constant memory.
///
/// Record events (`source_tx` … `deliver_mark`) carry packet semantics;
/// ledger events (`wireless_tx` … `backplane_drop_count`) are unit
/// increments of the efficiency accounting; `ledger_totals` adds whole
/// ledgers at once (used by trace replay instead of re-emitting every
/// increment).
pub trait LogSink {
    /// A source transmission of `id` at `at`.
    fn source_tx(
        &mut self,
        at: SimTime,
        id: PacketId,
        dir: Direction,
        aux_set: Vec<NodeId>,
        aux_heard: Vec<NodeId>,
        dst_heard: bool,
    );
    /// Auxiliaries that heard an ACK for `id` (attaches to its latest
    /// record, filtered to aux-set members).
    fn ack_attach(&mut self, at: SimTime, id: PacketId, heard_by: &[NodeId]);
    /// An auxiliary's relay decision for `id`.
    fn decision(&mut self, at: SimTime, id: PacketId, aux: NodeId, prob: f64, relayed: bool);
    /// The fate of a performed relay of `id`.
    fn relay(&mut self, at: SimTime, id: PacketId, by: NodeId, via_backplane: bool, reached: bool);
    /// Application-level delivery of `id` (marks every record of the id).
    fn deliver_mark(&mut self, at: SimTime, id: PacketId);
    /// Aux-set size sample at second `sec`.
    fn aux_sample(&mut self, at: SimTime, sec: u64, size: usize);
    /// One wireless data transmission in `dir`.
    fn wireless_tx(&mut self, at: SimTime, dir: Direction);
    /// One protocol ACK transmission in `dir`.
    fn ack_tx(&mut self, at: SimTime, dir: Direction);
    /// One backplane message (upstream relays ride the backplane).
    fn backplane_tx(&mut self, at: SimTime);
    /// One delivered packet counted in `dir`'s ledger.
    fn ledger_delivered(&mut self, at: SimTime, dir: Direction);
    /// One backplane message dropped by the capacity model.
    fn backplane_drop_count(&mut self, at: SimTime);
    /// No further events will reference `id` (advisory; lets streaming
    /// consumers finalize and drop per-id state).
    fn retire(&mut self, at: SimTime, id: PacketId) {
        let _ = (at, id);
    }
    /// Add whole ledgers (`[wireless_tx, backplane_tx, ack_tx,
    /// delivered]` per direction) and a backplane-drop total at once.
    fn ledger_totals(&mut self, up: [u64; 4], down: [u64; 4], backplane_drops: u64);
}

impl LogSink for RunLog {
    fn source_tx(
        &mut self,
        at: SimTime,
        id: PacketId,
        dir: Direction,
        aux_set: Vec<NodeId>,
        aux_heard: Vec<NodeId>,
        dst_heard: bool,
    ) {
        self.on_source_tx(id, dir, at, aux_set, aux_heard, dst_heard);
    }

    fn ack_attach(&mut self, _at: SimTime, id: PacketId, heard_by: &[NodeId]) {
        self.on_ack_heard(id, heard_by);
    }

    fn decision(&mut self, _at: SimTime, id: PacketId, aux: NodeId, prob: f64, relayed: bool) {
        self.on_decision(id, aux, prob, relayed);
    }

    fn relay(
        &mut self,
        _at: SimTime,
        id: PacketId,
        by: NodeId,
        via_backplane: bool,
        reached: bool,
    ) {
        self.on_relay(id, by, via_backplane, reached);
    }

    fn deliver_mark(&mut self, _at: SimTime, id: PacketId) {
        self.on_delivered(id);
    }

    fn aux_sample(&mut self, _at: SimTime, sec: u64, size: usize) {
        self.on_aux_sample(sec, size);
    }

    fn wireless_tx(&mut self, _at: SimTime, dir: Direction) {
        self.ledger_mut(dir).on_wireless_tx();
    }

    fn ack_tx(&mut self, _at: SimTime, dir: Direction) {
        self.ledger_mut(dir).on_ack_tx();
    }

    fn backplane_tx(&mut self, _at: SimTime) {
        self.ledger_up.on_backplane_tx();
    }

    fn ledger_delivered(&mut self, _at: SimTime, dir: Direction) {
        self.ledger_mut(dir).on_delivered();
    }

    fn backplane_drop_count(&mut self, _at: SimTime) {
        self.backplane_drops += 1;
    }

    fn ledger_totals(&mut self, up: [u64; 4], down: [u64; 4], backplane_drops: u64) {
        for (ledger, t) in [(&mut self.ledger_up, up), (&mut self.ledger_down, down)] {
            ledger.wireless_tx += t[0];
            ledger.backplane_tx += t[1];
            ledger.ack_tx += t[2];
            ledger.delivered += t[3];
        }
        self.backplane_drops += backplane_drops;
    }
}

/// Digest of one finalized [`TxRecord`] at creation index `index`.
///
/// The run-log fingerprint is the *wrapping sum* of these per-record
/// digests (order information rides inside each digest via `index`), so
/// a streaming consumer may finalize records in whatever order their
/// last mutation arrives and still reproduce the in-memory fingerprint
/// bit-for-bit.
pub fn record_digest(index: u64, r: &TxRecord) -> u64 {
    let mut fp = Fingerprint::new();
    fp.push_u64(index);
    fp.push_u64(r.id.origin.label());
    fp.push_u64(r.id.seq);
    fp.push_u64(r.attempt as u64);
    fp.push_u64(match r.dir {
        Direction::Upstream => 0,
        Direction::Downstream => 1,
    });
    fp.push_u64(r.at.as_micros());
    for ids in [&r.aux_set, &r.aux_heard, &r.ack_heard_by] {
        fp.push_len(ids.len());
        for n in ids {
            fp.push_u64(n.label());
        }
    }
    fp.push_bool(r.dst_heard);
    fp.push_len(r.decisions.len());
    for &(n, p, relayed) in &r.decisions {
        fp.push_u64(n.label());
        fp.push_f64(p);
        fp.push_bool(relayed);
    }
    fp.push_len(r.relays.len());
    for fate in &r.relays {
        fp.push_u64(fate.by.label());
        fp.push_bool(fate.via_backplane);
        fp.push_bool(fate.reached_dst);
    }
    fp.push_bool(r.delivered);
    fp.finish()
}

impl Fingerprintable for RunLog {
    fn fingerprint_into(&self, fp: &mut Fingerprint) {
        fp.push_len(self.records.len());
        let sum = self.records.iter().enumerate().fold(0u64, |acc, (i, r)| {
            acc.wrapping_add(record_digest(i as u64, r))
        });
        fp.push_u64(sum);
        fp.push_len(self.aux_sizes.len());
        for &(sec, size) in &self.aux_sizes {
            fp.push_u64(sec);
            fp.push_len(size);
        }
        for ledger in [&self.ledger_up, &self.ledger_down] {
            fp.push_u64(ledger.wireless_tx);
            fp.push_u64(ledger.backplane_tx);
            fp.push_u64(ledger.ack_tx);
            fp.push_u64(ledger.delivered);
        }
        fp.push_u64(self.backplane_drops);
    }
}

/// One direction's column of Table 1.
#[derive(Clone, Copy, Debug, Default)]
pub struct Table1Column {
    /// A1: median number of auxiliary BSes.
    pub a1_median_aux: f64,
    /// A2: average number of auxiliaries that hear a source transmission.
    pub a2_aux_hear_tx: f64,
    /// A3: average number of auxiliaries that hear the source transmission
    /// but not the acknowledgment.
    pub a3_aux_hear_tx_not_ack: f64,
    /// B1: fraction of source transmissions that reach the destination.
    pub b1_src_reach: f64,
    /// B2: relayed transmissions corresponding to successful source
    /// transmissions (false positives), per successful source tx.
    pub b2_false_positive: f64,
    /// B3: average number of relayers when a false positive occurs.
    pub b3_relayers_on_fp: f64,
    /// C1: fraction of source transmissions that do not reach the
    /// destination.
    pub c1_src_fail: f64,
    /// C2: fraction of failed source transmissions overheard by ≥1 aux.
    pub c2_overheard: f64,
    /// C3: fraction of failed source transmissions that no auxiliary
    /// relays (false negatives).
    pub c3_false_negative: f64,
    /// C4: fraction of relayed packets that reach the destination.
    pub c4_relay_reach: f64,
}

/// Table 1: the behavioural statistics of ViFi, both directions.
#[derive(Clone, Copy, Debug, Default)]
pub struct Table1 {
    /// Upstream column.
    pub up: Table1Column,
    /// Downstream column.
    pub down: Table1Column,
}

/// Integer accumulators behind one [`Table1Column`].
///
/// Every Table 1 cell except A1 is a ratio of counts; keeping the counts
/// explicit lets the in-memory path ([`Table1::from_log`]) and the
/// streaming binary-trace fold (`binlog`) share the exact same arithmetic
/// — the divisions happen once, in [`ColumnCounts::into_column`], so the
/// two paths agree bit-for-bit.
#[derive(Clone, Copy, Debug, Default)]
pub struct ColumnCounts {
    /// Source transmissions.
    pub n: u64,
    /// Σ auxiliaries hearing each transmission (A2 numerator).
    pub aux_heard_sum: u64,
    /// Σ auxiliaries hearing the transmission but not the ACK (A3).
    pub aux_not_ack_sum: u64,
    /// Transmissions that reached the destination (B1).
    pub successes: u64,
    /// Relays attached to successful transmissions (B2 numerator).
    pub fp_relays: u64,
    /// Successful transmissions with ≥ 1 relay (B3 denominator).
    pub fp_events: u64,
    /// Transmissions that missed the destination (C1).
    pub failures: u64,
    /// Failures overheard by ≥ 1 auxiliary (C2 numerator).
    pub overheard: u64,
    /// Overheard failures nobody relayed (C3 numerator).
    pub unrelayed_overheard: u64,
    /// All relays (C4 denominator).
    pub relays_total: u64,
    /// Relays that reached the destination (C4 numerator).
    pub relays_reached: u64,
}

impl ColumnCounts {
    /// Fold one finalized record into the counts.
    pub fn add_record(&mut self, r: &TxRecord) {
        self.n += 1;
        self.aux_heard_sum += r.aux_heard.len() as u64;
        self.aux_not_ack_sum += r
            .aux_heard
            .iter()
            .filter(|a| !r.ack_heard_by.contains(a))
            .count() as u64;
        if r.dst_heard {
            self.successes += 1;
            self.fp_relays += r.relays.len() as u64;
            if !r.relays.is_empty() {
                self.fp_events += 1;
            }
        } else {
            self.failures += 1;
            if !r.aux_heard.is_empty() {
                self.overheard += 1;
                if r.relays.is_empty() {
                    self.unrelayed_overheard += 1;
                }
            }
        }
        self.relays_total += r.relays.len() as u64;
        self.relays_reached += r.relays.iter().filter(|f| f.reached_dst).count() as u64;
    }

    /// Convert to the published column; `a1_median_aux` is the median
    /// aux-set size (computed by the caller from the aux samples).
    pub fn into_column(self, a1_median_aux: f64) -> Table1Column {
        let mut col = Table1Column::default();
        if self.n == 0 {
            return col;
        }
        col.a1_median_aux = a1_median_aux;
        let n = self.n as f64;
        col.a2_aux_hear_tx = self.aux_heard_sum as f64 / n;
        col.a3_aux_hear_tx_not_ack = self.aux_not_ack_sum as f64 / n;
        col.b1_src_reach = self.successes as f64 / n;
        col.c1_src_fail = self.failures as f64 / n;
        if self.successes > 0 {
            col.b2_false_positive = self.fp_relays as f64 / self.successes as f64;
            if self.fp_events > 0 {
                col.b3_relayers_on_fp = self.fp_relays as f64 / self.fp_events as f64;
            }
        }
        if self.failures > 0 {
            // C3's denominator is the *overheard* failures: the paper's own
            // consistency check ("roughly 65% of the lost source
            // transmissions are relayed" = C2 x (1 - C3)) only works out
            // that way for both directions.
            col.c2_overheard = self.overheard as f64 / self.failures as f64;
            if self.overheard > 0 {
                col.c3_false_negative = self.unrelayed_overheard as f64 / self.overheard as f64;
            }
        }
        if self.relays_total > 0 {
            col.c4_relay_reach = self.relays_reached as f64 / self.relays_total as f64;
        }
        col
    }
}

/// Median aux-set size over the per-second samples (Table 1 row A1; the
/// set belongs to the vehicle, so both directions share it).
pub fn median_aux_size(aux_sizes: &[(u64, usize)]) -> f64 {
    let sizes: Vec<f64> = aux_sizes.iter().map(|&(_, s)| s as f64).collect();
    vifi_metrics::median(&sizes)
}

impl Table1 {
    /// Derive Table 1 from a run log.
    pub fn from_log(log: &RunLog) -> Table1 {
        Table1 {
            up: Self::column(log, Direction::Upstream),
            down: Self::column(log, Direction::Downstream),
        }
    }

    fn column(log: &RunLog, dir: Direction) -> Table1Column {
        let mut counts = ColumnCounts::default();
        for r in log.dir_records(dir) {
            counts.add_record(r);
        }
        counts.into_column(median_aux_size(&log.aux_sizes))
    }
}

/// One row of Table 2: downstream false positives/negatives for one
/// coordination scheme.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Scheme name ("ViFi", "¬G1", …).
    pub scheme: String,
    /// Relays of already-delivered packets per successful source tx.
    pub false_positives: f64,
    /// Failed source transmissions nobody relayed, per failed source tx.
    pub false_negatives: f64,
}

impl Table2Row {
    /// Compute the downstream false-positive/negative rates from a log.
    pub fn from_log(scheme: &str, log: &RunLog) -> Table2Row {
        let col = Table1::column(log, Direction::Downstream);
        Table2Row {
            scheme: scheme.to_string(),
            false_positives: col.b2_false_positive,
            false_negatives: col.c3_false_negative,
        }
    }
}

/// The PerfectRelay oracle of §5.4, estimated from a ViFi log exactly as
/// the paper estimates it: upstream delivery = "some BS heard it";
/// downstream delivery = ViFi's relay outcome when ViFi relayed, success
/// when it did not; exactly one relay happens, and only when the
/// destination missed the source transmission.
#[derive(Clone, Copy, Debug, Default)]
pub struct PerfectRelayOutcome {
    /// Packets delivered per wireless transmission, upstream.
    pub efficiency_up: f64,
    /// Packets delivered per wireless transmission, downstream.
    pub efficiency_down: f64,
}

/// Integer accumulators behind [`PerfectRelayOutcome`], shared by the
/// in-memory estimate and the streaming binary-trace fold so their
/// divisions agree bit-for-bit.
#[derive(Clone, Copy, Debug, Default)]
pub struct PerfectRelayCounts {
    /// Upstream wireless transmissions (one per source tx; upstream
    /// relays ride the backplane for free).
    pub up_tx: u64,
    /// Distinct upstream packet ids delivered under the oracle.
    pub up_delivered: u64,
    /// Downstream wireless transmissions (source tx + the single perfect
    /// relay when the destination missed it and some aux could relay).
    pub down_tx: u64,
    /// Distinct downstream packet ids delivered under the oracle.
    pub down_delivered: u64,
}

impl PerfectRelayCounts {
    /// Fold one finalized record's transmission costs, returning whether
    /// this record qualifies its packet id as delivered under the oracle.
    /// The caller deduplicates per id (a packet counts once no matter how
    /// many of its transmissions qualify) and then bumps
    /// [`PerfectRelayCounts::up_delivered`] /
    /// [`PerfectRelayCounts::down_delivered`].
    pub fn add_record(&mut self, r: &TxRecord) -> bool {
        match r.dir {
            // Upstream: delivered iff dst or any aux heard it.
            Direction::Upstream => {
                self.up_tx += 1;
                r.dst_heard || !r.aux_heard.is_empty()
            }
            // Downstream: delivery per the paper's two-case estimate.
            Direction::Downstream => {
                self.down_tx += 1;
                if r.dst_heard {
                    true
                } else if !r.aux_heard.is_empty() {
                    self.down_tx += 1; // the single perfect relay
                    if r.relays.iter().any(|f| !f.via_backplane) {
                        // ViFi relayed: reuse its outcome.
                        r.relays.iter().any(|f| f.reached_dst)
                    } else {
                        // ViFi did not relay: assume success (§5.4 rule ii).
                        true
                    }
                } else {
                    false
                }
            }
        }
    }

    /// The published per-direction efficiencies.
    pub fn into_outcome(self) -> PerfectRelayOutcome {
        let mut out = PerfectRelayOutcome::default();
        if self.up_tx > 0 {
            out.efficiency_up = self.up_delivered as f64 / self.up_tx as f64;
        }
        if self.down_tx > 0 {
            out.efficiency_down = self.down_delivered as f64 / self.down_tx as f64;
        }
        out
    }
}

impl PerfectRelayOutcome {
    /// Estimate from a ViFi run log.
    pub fn from_log(log: &RunLog) -> PerfectRelayOutcome {
        let mut counts = PerfectRelayCounts::default();
        let mut seen: std::collections::HashSet<PacketId> = Default::default();
        for r in &log.records {
            if counts.add_record(r) && seen.insert(r.id) {
                match r.dir {
                    Direction::Upstream => counts.up_delivered += 1,
                    Direction::Downstream => counts.down_delivered += 1,
                }
            }
        }
        counts.into_outcome()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(seq: u64) -> PacketId {
        PacketId {
            origin: NodeId(0),
            seq,
        }
    }

    fn aux(n: u32) -> Vec<NodeId> {
        (10..10 + n).map(NodeId).collect()
    }

    #[test]
    fn attempts_count_per_id() {
        let mut log = RunLog::new();
        log.on_source_tx(
            id(1),
            Direction::Upstream,
            SimTime::ZERO,
            aux(3),
            vec![],
            false,
        );
        log.on_source_tx(
            id(1),
            Direction::Upstream,
            SimTime::from_millis(30),
            aux(3),
            vec![],
            true,
        );
        log.on_source_tx(
            id(2),
            Direction::Upstream,
            SimTime::from_millis(60),
            aux(3),
            vec![],
            true,
        );
        assert_eq!(log.records[0].attempt, 0);
        assert_eq!(log.records[1].attempt, 1);
        assert_eq!(log.records[2].attempt, 0);
    }

    #[test]
    fn table1_basic_rates() {
        let mut log = RunLog::new();
        log.on_aux_sample(0, 5);
        log.on_aux_sample(1, 3);
        log.on_aux_sample(2, 5);
        // 4 upstream transmissions: 3 reach dst, 1 fails.
        for (i, dst) in [(0u64, true), (1, true), (2, true), (3, false)] {
            log.on_source_tx(
                id(i),
                Direction::Upstream,
                SimTime::from_millis(i * 10),
                aux(5),
                if dst {
                    vec![NodeId(10)]
                } else {
                    vec![NodeId(10), NodeId(11)]
                },
                dst,
            );
            if dst {
                log.on_delivered(id(i));
            }
        }
        // The failed one gets relayed by one aux over the backplane and
        // reaches the destination.
        log.on_decision(id(3), NodeId(10), 0.9, true);
        log.on_relay(id(3), NodeId(10), true, true);
        log.on_delivered(id(3));
        // One successful one also gets a (false-positive) relay.
        log.on_decision(id(0), NodeId(10), 0.3, true);
        log.on_relay(id(0), NodeId(10), true, true);

        let t = Table1::from_log(&log);
        assert_eq!(t.up.a1_median_aux, 5.0);
        assert!((t.up.b1_src_reach - 0.75).abs() < 1e-12);
        assert!((t.up.c1_src_fail - 0.25).abs() < 1e-12);
        // 1 relay on 3 successful tx.
        assert!((t.up.b2_false_positive - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(t.up.b3_relayers_on_fp, 1.0);
        // The only failure was overheard and relayed: no false negatives.
        assert_eq!(t.up.c2_overheard, 1.0);
        assert_eq!(t.up.c3_false_negative, 0.0);
        assert_eq!(t.up.c4_relay_reach, 1.0);
        // A2: (1+1+1+2)/4.
        assert!((t.up.a2_aux_hear_tx - 1.25).abs() < 1e-12);
    }

    #[test]
    fn ack_hearing_reduces_a3() {
        let mut log = RunLog::new();
        log.on_source_tx(
            id(1),
            Direction::Downstream,
            SimTime::ZERO,
            aux(3),
            vec![NodeId(10), NodeId(11)],
            true,
        );
        log.on_ack_heard(id(1), &[NodeId(10), NodeId(99)]);
        let t = Table1::from_log(&log);
        assert_eq!(t.down.a2_aux_hear_tx, 2.0);
        assert_eq!(t.down.a3_aux_hear_tx_not_ack, 1.0, "one aux missed the ACK");
    }

    #[test]
    fn table2_row_uses_downstream() {
        let mut log = RunLog::new();
        // Downstream: 2 successes with 3 relays total → fp = 1.5;
        // 2 failures, one unrelayed → fn = 0.5.
        for (i, dst) in [(0u64, true), (1, true), (2, false), (3, false)] {
            log.on_source_tx(
                id(i),
                Direction::Downstream,
                SimTime::from_millis(i * 10),
                aux(4),
                vec![NodeId(10)],
                dst,
            );
        }
        log.on_relay(id(0), NodeId(10), false, true);
        log.on_relay(id(0), NodeId(11), false, false);
        log.on_relay(id(1), NodeId(12), false, true);
        log.on_relay(id(2), NodeId(10), false, true);
        let row = Table2Row::from_log("ViFi", &log);
        assert!((row.false_positives - 1.5).abs() < 1e-12);
        assert!((row.false_negatives - 0.5).abs() < 1e-12);
    }

    #[test]
    fn perfect_relay_upstream_counts_any_bs() {
        let mut log = RunLog::new();
        // tx0: dst heard. tx1: only aux heard. tx2: nobody heard.
        log.on_source_tx(
            id(0),
            Direction::Upstream,
            SimTime::ZERO,
            aux(2),
            vec![],
            true,
        );
        log.on_source_tx(
            id(1),
            Direction::Upstream,
            SimTime::ZERO,
            aux(2),
            vec![NodeId(10)],
            false,
        );
        log.on_source_tx(
            id(2),
            Direction::Upstream,
            SimTime::ZERO,
            aux(2),
            vec![],
            false,
        );
        let p = PerfectRelayOutcome::from_log(&log);
        assert!((p.efficiency_up - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_relay_downstream_spends_one_relay() {
        let mut log = RunLog::new();
        // tx0: dst heard (1 tx, delivered).
        log.on_source_tx(
            id(0),
            Direction::Downstream,
            SimTime::ZERO,
            aux(2),
            vec![],
            true,
        );
        // tx1: dst missed, aux heard, ViFi did not relay → assumed success,
        // 2 tx.
        log.on_source_tx(
            id(1),
            Direction::Downstream,
            SimTime::ZERO,
            aux(2),
            vec![NodeId(10)],
            false,
        );
        // tx2: dst missed, aux heard, ViFi relayed and failed → failure,
        // 2 tx.
        log.on_source_tx(
            id(2),
            Direction::Downstream,
            SimTime::ZERO,
            aux(2),
            vec![NodeId(10)],
            false,
        );
        log.on_relay(id(2), NodeId(10), false, false);
        let p = PerfectRelayOutcome::from_log(&log);
        // Delivered: id0, id1 → 2; tx: 1 + 2 + 2 = 5.
        assert!((p.efficiency_down - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn aux_samples_dedup_by_second() {
        let mut log = RunLog::new();
        log.on_aux_sample(0, 4);
        log.on_aux_sample(0, 9);
        log.on_aux_sample(1, 5);
        assert_eq!(log.aux_sizes, vec![(0, 4), (1, 5)]);
    }

    #[test]
    fn empty_log_yields_zeroed_tables() {
        let log = RunLog::new();
        let t = Table1::from_log(&log);
        assert_eq!(t.up.b1_src_reach, 0.0);
        let p = PerfectRelayOutcome::from_log(&log);
        assert_eq!(p.efficiency_up, 0.0);
    }
}
