//! Packet-level run logs and the paper's derived statistics.
//!
//! The runtime records one [`TxRecord`] per *source transmission* (a data
//! frame with `relayed_by == None`), then attaches to it: which
//! auxiliaries heard it, whether the destination heard it, who heard the
//! destination's ACK, every auxiliary's relay decision, and each relay's
//! fate. Everything the paper derives from its packet logs comes from
//! these records:
//!
//! * **Table 1** (rows A1–C4) — [`Table1::from_log`];
//! * **Table 2** (false positives/negatives per coordination scheme) —
//!   [`Table2Row::from_log`];
//! * **Fig. 12** (medium-use efficiency incl. the PerfectRelay oracle) —
//!   [`RunLog::efficiency`] and [`PerfectRelayOutcome::from_log`].

use std::collections::HashMap;

use vifi_core::{Direction, PacketId};
use vifi_metrics::EfficiencyLedger;
use vifi_phy::NodeId;
use vifi_sim::SimTime;

use crate::fingerprint::{Fingerprint, Fingerprintable};

/// The fate of one relay of one packet.
#[derive(Clone, Debug)]
pub struct RelayFate {
    /// The relaying auxiliary.
    pub by: NodeId,
    /// Upstream relays ride the backplane; downstream relays the air.
    pub via_backplane: bool,
    /// Whether the relayed copy reached the flow destination.
    pub reached_dst: bool,
}

/// Everything observed about one source transmission.
#[derive(Clone, Debug)]
pub struct TxRecord {
    /// Packet identity.
    pub id: PacketId,
    /// Which attempt this is (0 = first transmission).
    pub attempt: u32,
    /// Direction.
    pub dir: Direction,
    /// Time the frame left the source.
    pub at: SimTime,
    /// The auxiliary set announced by the vehicle at transmission time.
    pub aux_set: Vec<NodeId>,
    /// Auxiliaries (members of `aux_set`) that received this transmission.
    pub aux_heard: Vec<NodeId>,
    /// Whether the flow destination received this transmission.
    pub dst_heard: bool,
    /// Auxiliaries that later heard an ACK for this packet.
    pub ack_heard_by: Vec<NodeId>,
    /// Relay decisions made for this packet after this transmission:
    /// `(aux, probability, relayed)`.
    pub decisions: Vec<(NodeId, f64, bool)>,
    /// Fates of performed relays.
    pub relays: Vec<RelayFate>,
    /// Whether the packet (by id) was ultimately delivered to the
    /// destination by any path.
    pub delivered: bool,
}

/// The full log of a run.
#[derive(Default)]
pub struct RunLog {
    /// Source-transmission records, in transmission order.
    pub records: Vec<TxRecord>,
    /// Index of the latest record per packet id (ACKs, decisions and
    /// relays attach to the most recent transmission of the id).
    latest: HashMap<PacketId, usize>,
    /// Per-second size of the vehicle's auxiliary set (Table 1 row A1).
    pub aux_sizes: Vec<(u64, usize)>,
    /// Wireless data transmissions per direction (sources + wireless
    /// relays + retransmissions) — the Fig. 12 denominator.
    pub ledger_up: EfficiencyLedger,
    /// Downstream ledger.
    pub ledger_down: EfficiencyLedger,
    /// Backplane messages dropped by the capacity model.
    pub backplane_drops: u64,
}

impl RunLog {
    /// Fresh log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a source transmission.
    pub fn on_source_tx(
        &mut self,
        id: PacketId,
        dir: Direction,
        at: SimTime,
        aux_set: Vec<NodeId>,
        aux_heard: Vec<NodeId>,
        dst_heard: bool,
    ) {
        let attempt = self
            .latest
            .get(&id)
            .map(|&i| self.records[i].attempt + 1)
            .unwrap_or(0);
        let rec = TxRecord {
            id,
            attempt,
            dir,
            at,
            aux_set,
            aux_heard,
            dst_heard,
            ack_heard_by: Vec::new(),
            decisions: Vec::new(),
            relays: Vec::new(),
            delivered: false,
        };
        self.latest.insert(id, self.records.len());
        self.records.push(rec);
    }

    fn latest_mut(&mut self, id: PacketId) -> Option<&mut TxRecord> {
        let &i = self.latest.get(&id)?;
        self.records.get_mut(i)
    }

    /// Record which auxiliaries heard an ACK for `id`.
    pub fn on_ack_heard(&mut self, id: PacketId, heard_by: &[NodeId]) {
        if let Some(r) = self.latest_mut(id) {
            for n in heard_by {
                if r.aux_set.contains(n) && !r.ack_heard_by.contains(n) {
                    r.ack_heard_by.push(*n);
                }
            }
        }
    }

    /// Record an auxiliary's relay decision.
    pub fn on_decision(&mut self, id: PacketId, aux: NodeId, prob: f64, relayed: bool) {
        if let Some(r) = self.latest_mut(id) {
            r.decisions.push((aux, prob, relayed));
        }
    }

    /// Record the fate of a performed relay.
    pub fn on_relay(&mut self, id: PacketId, by: NodeId, via_backplane: bool, reached: bool) {
        if let Some(r) = self.latest_mut(id) {
            r.relays.push(RelayFate {
                by,
                via_backplane,
                reached_dst: reached,
            });
        }
    }

    /// Record an application-level delivery of `id` at the destination.
    pub fn on_delivered(&mut self, id: PacketId) {
        // Mark every transmission of this id (delivery is per packet).
        for r in self.records.iter_mut().filter(|r| r.id == id) {
            r.delivered = true;
        }
    }

    /// Record the vehicle's aux-set size at a 1-second sample point.
    pub fn on_aux_sample(&mut self, sec: u64, size: usize) {
        if self.aux_sizes.last().map(|&(s, _)| s) != Some(sec) {
            self.aux_sizes.push((sec, size));
        }
    }

    /// The efficiency ledger for a direction.
    pub fn efficiency(&self, dir: Direction) -> &EfficiencyLedger {
        match dir {
            Direction::Upstream => &self.ledger_up,
            Direction::Downstream => &self.ledger_down,
        }
    }

    /// Rewrite every node id in the log through `f` (packet origins, aux
    /// sets, relay decisions, relay fates). Sharded runs simulate each
    /// vehicle in a re-densified sub-scenario; this maps the instrumented
    /// shard's log back into the parent scenario's id space so merged
    /// outcomes read like sequential ones. The internal latest-record
    /// index is rebuilt because packet ids embed their origin node.
    pub fn remap_nodes(&mut self, f: impl Fn(NodeId) -> NodeId) {
        for r in &mut self.records {
            r.id.origin = f(r.id.origin);
            for n in r
                .aux_set
                .iter_mut()
                .chain(r.aux_heard.iter_mut())
                .chain(r.ack_heard_by.iter_mut())
            {
                *n = f(*n);
            }
            for d in &mut r.decisions {
                d.0 = f(d.0);
            }
            for fate in &mut r.relays {
                fate.by = f(fate.by);
            }
        }
        let remapped: HashMap<PacketId, usize> = self
            .latest
            .drain()
            .map(|(mut id, idx)| {
                id.origin = f(id.origin);
                (id, idx)
            })
            .collect();
        self.latest = remapped;
    }

    fn dir_records(&self, dir: Direction) -> impl Iterator<Item = &TxRecord> {
        self.records.iter().filter(move |r| r.dir == dir)
    }
}

impl Fingerprintable for RunLog {
    fn fingerprint_into(&self, fp: &mut Fingerprint) {
        fp.push_len(self.records.len());
        for r in &self.records {
            fp.push_u64(r.id.origin.label());
            fp.push_u64(r.id.seq);
            fp.push_u64(r.attempt as u64);
            fp.push_u64(match r.dir {
                Direction::Upstream => 0,
                Direction::Downstream => 1,
            });
            fp.push_u64(r.at.as_micros());
            for ids in [&r.aux_set, &r.aux_heard, &r.ack_heard_by] {
                fp.push_len(ids.len());
                for n in ids {
                    fp.push_u64(n.label());
                }
            }
            fp.push_bool(r.dst_heard);
            fp.push_len(r.decisions.len());
            for &(n, p, relayed) in &r.decisions {
                fp.push_u64(n.label());
                fp.push_f64(p);
                fp.push_bool(relayed);
            }
            fp.push_len(r.relays.len());
            for fate in &r.relays {
                fp.push_u64(fate.by.label());
                fp.push_bool(fate.via_backplane);
                fp.push_bool(fate.reached_dst);
            }
            fp.push_bool(r.delivered);
        }
        fp.push_len(self.aux_sizes.len());
        for &(sec, size) in &self.aux_sizes {
            fp.push_u64(sec);
            fp.push_len(size);
        }
        for ledger in [&self.ledger_up, &self.ledger_down] {
            fp.push_u64(ledger.wireless_tx);
            fp.push_u64(ledger.backplane_tx);
            fp.push_u64(ledger.ack_tx);
            fp.push_u64(ledger.delivered);
        }
        fp.push_u64(self.backplane_drops);
    }
}

/// One direction's column of Table 1.
#[derive(Clone, Copy, Debug, Default)]
pub struct Table1Column {
    /// A1: median number of auxiliary BSes.
    pub a1_median_aux: f64,
    /// A2: average number of auxiliaries that hear a source transmission.
    pub a2_aux_hear_tx: f64,
    /// A3: average number of auxiliaries that hear the source transmission
    /// but not the acknowledgment.
    pub a3_aux_hear_tx_not_ack: f64,
    /// B1: fraction of source transmissions that reach the destination.
    pub b1_src_reach: f64,
    /// B2: relayed transmissions corresponding to successful source
    /// transmissions (false positives), per successful source tx.
    pub b2_false_positive: f64,
    /// B3: average number of relayers when a false positive occurs.
    pub b3_relayers_on_fp: f64,
    /// C1: fraction of source transmissions that do not reach the
    /// destination.
    pub c1_src_fail: f64,
    /// C2: fraction of failed source transmissions overheard by ≥1 aux.
    pub c2_overheard: f64,
    /// C3: fraction of failed source transmissions that no auxiliary
    /// relays (false negatives).
    pub c3_false_negative: f64,
    /// C4: fraction of relayed packets that reach the destination.
    pub c4_relay_reach: f64,
}

/// Table 1: the behavioural statistics of ViFi, both directions.
#[derive(Clone, Copy, Debug, Default)]
pub struct Table1 {
    /// Upstream column.
    pub up: Table1Column,
    /// Downstream column.
    pub down: Table1Column,
}

impl Table1 {
    /// Derive Table 1 from a run log.
    pub fn from_log(log: &RunLog) -> Table1 {
        Table1 {
            up: Self::column(log, Direction::Upstream),
            down: Self::column(log, Direction::Downstream),
        }
    }

    fn column(log: &RunLog, dir: Direction) -> Table1Column {
        let recs: Vec<&TxRecord> = log.dir_records(dir).collect();
        let mut col = Table1Column::default();
        if recs.is_empty() {
            return col;
        }
        // A1: median aux-set size over per-second samples (same for both
        // directions; the set belongs to the vehicle).
        let mut sizes: Vec<f64> = log.aux_sizes.iter().map(|&(_, s)| s as f64).collect();
        sizes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        col.a1_median_aux = vifi_metrics::median(&sizes);

        let n = recs.len() as f64;
        col.a2_aux_hear_tx = recs.iter().map(|r| r.aux_heard.len() as f64).sum::<f64>() / n;
        col.a3_aux_hear_tx_not_ack = recs
            .iter()
            .map(|r| {
                r.aux_heard
                    .iter()
                    .filter(|a| !r.ack_heard_by.contains(a))
                    .count() as f64
            })
            .sum::<f64>()
            / n;

        let successes: Vec<&&TxRecord> = recs.iter().filter(|r| r.dst_heard).collect();
        let failures: Vec<&&TxRecord> = recs.iter().filter(|r| !r.dst_heard).collect();
        col.b1_src_reach = successes.len() as f64 / n;
        col.c1_src_fail = failures.len() as f64 / n;

        if !successes.is_empty() {
            let fp_relays: usize = successes.iter().map(|r| r.relays.len()).sum();
            col.b2_false_positive = fp_relays as f64 / successes.len() as f64;
            let fp_events: Vec<usize> = successes
                .iter()
                .filter(|r| !r.relays.is_empty())
                .map(|r| r.relays.len())
                .collect();
            if !fp_events.is_empty() {
                col.b3_relayers_on_fp =
                    fp_events.iter().sum::<usize>() as f64 / fp_events.len() as f64;
            }
        }

        if !failures.is_empty() {
            let overheard: Vec<&&&TxRecord> = failures
                .iter()
                .filter(|r| !r.aux_heard.is_empty())
                .collect();
            col.c2_overheard = overheard.len() as f64 / failures.len() as f64;
            // C3's denominator is the *overheard* failures: the paper's own
            // consistency check ("roughly 65% of the lost source
            // transmissions are relayed" = C2 x (1 - C3)) only works out
            // that way for both directions.
            if !overheard.is_empty() {
                let no_relay = overheard.iter().filter(|r| r.relays.is_empty()).count();
                col.c3_false_negative = no_relay as f64 / overheard.len() as f64;
            }
        }

        let all_relays: Vec<&RelayFate> = recs.iter().flat_map(|r| r.relays.iter()).collect();
        if !all_relays.is_empty() {
            col.c4_relay_reach = all_relays.iter().filter(|f| f.reached_dst).count() as f64
                / all_relays.len() as f64;
        }
        col
    }
}

/// One row of Table 2: downstream false positives/negatives for one
/// coordination scheme.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Scheme name ("ViFi", "¬G1", …).
    pub scheme: String,
    /// Relays of already-delivered packets per successful source tx.
    pub false_positives: f64,
    /// Failed source transmissions nobody relayed, per failed source tx.
    pub false_negatives: f64,
}

impl Table2Row {
    /// Compute the downstream false-positive/negative rates from a log.
    pub fn from_log(scheme: &str, log: &RunLog) -> Table2Row {
        let col = Table1::column(log, Direction::Downstream);
        Table2Row {
            scheme: scheme.to_string(),
            false_positives: col.b2_false_positive,
            false_negatives: col.c3_false_negative,
        }
    }
}

/// The PerfectRelay oracle of §5.4, estimated from a ViFi log exactly as
/// the paper estimates it: upstream delivery = "some BS heard it";
/// downstream delivery = ViFi's relay outcome when ViFi relayed, success
/// when it did not; exactly one relay happens, and only when the
/// destination missed the source transmission.
#[derive(Clone, Copy, Debug, Default)]
pub struct PerfectRelayOutcome {
    /// Packets delivered per wireless transmission, upstream.
    pub efficiency_up: f64,
    /// Packets delivered per wireless transmission, downstream.
    pub efficiency_down: f64,
}

impl PerfectRelayOutcome {
    /// Estimate from a ViFi run log.
    pub fn from_log(log: &RunLog) -> PerfectRelayOutcome {
        let mut out = PerfectRelayOutcome::default();
        // Upstream: every source tx costs 1 wireless tx; relays ride the
        // backplane for free; delivered iff dst or any aux heard it.
        let mut up_tx = 0u64;
        let mut up_delivered = 0u64;
        let mut seen_up: std::collections::HashSet<PacketId> = Default::default();
        for r in log.dir_records(Direction::Upstream) {
            up_tx += 1;
            if (r.dst_heard || !r.aux_heard.is_empty()) && seen_up.insert(r.id) {
                up_delivered += 1;
            }
        }
        if up_tx > 0 {
            out.efficiency_up = up_delivered as f64 / up_tx as f64;
        }
        // Downstream: 1 wireless tx per source tx; +1 relay when the dst
        // missed it and some aux could relay. Delivery per the paper's
        // two-case estimate.
        let mut down_tx = 0u64;
        let mut down_delivered = 0u64;
        let mut seen_down: std::collections::HashSet<PacketId> = Default::default();
        for r in log.dir_records(Direction::Downstream) {
            down_tx += 1;
            let delivered;
            if r.dst_heard {
                delivered = true;
            } else if !r.aux_heard.is_empty() {
                down_tx += 1; // the single perfect relay
                if r.relays.iter().any(|f| !f.via_backplane) {
                    // ViFi relayed: reuse its outcome.
                    delivered = r.relays.iter().any(|f| f.reached_dst);
                } else {
                    // ViFi did not relay: assume success (§5.4 rule ii).
                    delivered = true;
                }
            } else {
                delivered = false;
            }
            if delivered && seen_down.insert(r.id) {
                down_delivered += 1;
            }
        }
        if down_tx > 0 {
            out.efficiency_down = down_delivered as f64 / down_tx as f64;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(seq: u64) -> PacketId {
        PacketId {
            origin: NodeId(0),
            seq,
        }
    }

    fn aux(n: u32) -> Vec<NodeId> {
        (10..10 + n).map(NodeId).collect()
    }

    #[test]
    fn attempts_count_per_id() {
        let mut log = RunLog::new();
        log.on_source_tx(
            id(1),
            Direction::Upstream,
            SimTime::ZERO,
            aux(3),
            vec![],
            false,
        );
        log.on_source_tx(
            id(1),
            Direction::Upstream,
            SimTime::from_millis(30),
            aux(3),
            vec![],
            true,
        );
        log.on_source_tx(
            id(2),
            Direction::Upstream,
            SimTime::from_millis(60),
            aux(3),
            vec![],
            true,
        );
        assert_eq!(log.records[0].attempt, 0);
        assert_eq!(log.records[1].attempt, 1);
        assert_eq!(log.records[2].attempt, 0);
    }

    #[test]
    fn table1_basic_rates() {
        let mut log = RunLog::new();
        log.on_aux_sample(0, 5);
        log.on_aux_sample(1, 3);
        log.on_aux_sample(2, 5);
        // 4 upstream transmissions: 3 reach dst, 1 fails.
        for (i, dst) in [(0u64, true), (1, true), (2, true), (3, false)] {
            log.on_source_tx(
                id(i),
                Direction::Upstream,
                SimTime::from_millis(i * 10),
                aux(5),
                if dst {
                    vec![NodeId(10)]
                } else {
                    vec![NodeId(10), NodeId(11)]
                },
                dst,
            );
            if dst {
                log.on_delivered(id(i));
            }
        }
        // The failed one gets relayed by one aux over the backplane and
        // reaches the destination.
        log.on_decision(id(3), NodeId(10), 0.9, true);
        log.on_relay(id(3), NodeId(10), true, true);
        log.on_delivered(id(3));
        // One successful one also gets a (false-positive) relay.
        log.on_decision(id(0), NodeId(10), 0.3, true);
        log.on_relay(id(0), NodeId(10), true, true);

        let t = Table1::from_log(&log);
        assert_eq!(t.up.a1_median_aux, 5.0);
        assert!((t.up.b1_src_reach - 0.75).abs() < 1e-12);
        assert!((t.up.c1_src_fail - 0.25).abs() < 1e-12);
        // 1 relay on 3 successful tx.
        assert!((t.up.b2_false_positive - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(t.up.b3_relayers_on_fp, 1.0);
        // The only failure was overheard and relayed: no false negatives.
        assert_eq!(t.up.c2_overheard, 1.0);
        assert_eq!(t.up.c3_false_negative, 0.0);
        assert_eq!(t.up.c4_relay_reach, 1.0);
        // A2: (1+1+1+2)/4.
        assert!((t.up.a2_aux_hear_tx - 1.25).abs() < 1e-12);
    }

    #[test]
    fn ack_hearing_reduces_a3() {
        let mut log = RunLog::new();
        log.on_source_tx(
            id(1),
            Direction::Downstream,
            SimTime::ZERO,
            aux(3),
            vec![NodeId(10), NodeId(11)],
            true,
        );
        log.on_ack_heard(id(1), &[NodeId(10), NodeId(99)]);
        let t = Table1::from_log(&log);
        assert_eq!(t.down.a2_aux_hear_tx, 2.0);
        assert_eq!(t.down.a3_aux_hear_tx_not_ack, 1.0, "one aux missed the ACK");
    }

    #[test]
    fn table2_row_uses_downstream() {
        let mut log = RunLog::new();
        // Downstream: 2 successes with 3 relays total → fp = 1.5;
        // 2 failures, one unrelayed → fn = 0.5.
        for (i, dst) in [(0u64, true), (1, true), (2, false), (3, false)] {
            log.on_source_tx(
                id(i),
                Direction::Downstream,
                SimTime::from_millis(i * 10),
                aux(4),
                vec![NodeId(10)],
                dst,
            );
        }
        log.on_relay(id(0), NodeId(10), false, true);
        log.on_relay(id(0), NodeId(11), false, false);
        log.on_relay(id(1), NodeId(12), false, true);
        log.on_relay(id(2), NodeId(10), false, true);
        let row = Table2Row::from_log("ViFi", &log);
        assert!((row.false_positives - 1.5).abs() < 1e-12);
        assert!((row.false_negatives - 0.5).abs() < 1e-12);
    }

    #[test]
    fn perfect_relay_upstream_counts_any_bs() {
        let mut log = RunLog::new();
        // tx0: dst heard. tx1: only aux heard. tx2: nobody heard.
        log.on_source_tx(
            id(0),
            Direction::Upstream,
            SimTime::ZERO,
            aux(2),
            vec![],
            true,
        );
        log.on_source_tx(
            id(1),
            Direction::Upstream,
            SimTime::ZERO,
            aux(2),
            vec![NodeId(10)],
            false,
        );
        log.on_source_tx(
            id(2),
            Direction::Upstream,
            SimTime::ZERO,
            aux(2),
            vec![],
            false,
        );
        let p = PerfectRelayOutcome::from_log(&log);
        assert!((p.efficiency_up - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_relay_downstream_spends_one_relay() {
        let mut log = RunLog::new();
        // tx0: dst heard (1 tx, delivered).
        log.on_source_tx(
            id(0),
            Direction::Downstream,
            SimTime::ZERO,
            aux(2),
            vec![],
            true,
        );
        // tx1: dst missed, aux heard, ViFi did not relay → assumed success,
        // 2 tx.
        log.on_source_tx(
            id(1),
            Direction::Downstream,
            SimTime::ZERO,
            aux(2),
            vec![NodeId(10)],
            false,
        );
        // tx2: dst missed, aux heard, ViFi relayed and failed → failure,
        // 2 tx.
        log.on_source_tx(
            id(2),
            Direction::Downstream,
            SimTime::ZERO,
            aux(2),
            vec![NodeId(10)],
            false,
        );
        log.on_relay(id(2), NodeId(10), false, false);
        let p = PerfectRelayOutcome::from_log(&log);
        // Delivered: id0, id1 → 2; tx: 1 + 2 + 2 = 5.
        assert!((p.efficiency_down - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn aux_samples_dedup_by_second() {
        let mut log = RunLog::new();
        log.on_aux_sample(0, 4);
        log.on_aux_sample(0, 9);
        log.on_aux_sample(1, 5);
        assert_eq!(log.aux_sizes, vec![(0, 4), (1, 5)]);
    }

    #[test]
    fn empty_log_yields_zeroed_tables() {
        let log = RunLog::new();
        let t = Table1::from_log(&log);
        assert_eq!(t.up.b1_src_reach, 0.0);
        let p = PerfectRelayOutcome::from_log(&log);
        assert_eq!(p.efficiency_up, 0.0);
    }
}
