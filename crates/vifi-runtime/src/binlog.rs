//! Streaming binary run traces: constant-memory logging and folding.
//!
//! The in-memory [`RunLog`] materializes one [`TxRecord`] per source
//! transmission — perfect for post-processing, fatal for days-long runs.
//! This module provides the streaming alternative:
//!
//! * [`BinaryRunLog`] — a [`LogSink`] that appends each logging event as
//!   a length-prefixed little-endian record to any `io::Write`, O(1)
//!   memory no matter the run length;
//! * [`read_stream`] — replays a binary trace into any [`LogSink`]
//!   (e.g. back into a `RunLog`, reconstructing it bit-for-bit);
//! * [`StreamFold`] — a [`LogSink`] that folds the events directly into
//!   [`Table1`], the Table 2 rates, the [`PerfectRelayOutcome`] oracle
//!   and the run-log fingerprint *without* materializing the record
//!   vector. Per-id state is dropped at [`LogSink::retire`], so the
//!   working set is bounded by packets in flight, not packets ever sent
//!   ([`StreamSummary::peak_pending`] reports the high-water mark).
//!
//! The fold reproduces [`RunLog`]'s fingerprint bit-for-bit because that
//! fingerprint combines per-record digests by wrapping addition (see
//! [`record_digest`]): a record may be finalized the moment its last
//! mutation is known — at retire, or early when a newer transmission of
//! the same id supersedes it — in any order, and the sum is unchanged.
//!
//! ## Record framing
//!
//! Every record is `len: u32 | kind: u8 | at_micros: u64 | body`, all
//! little-endian; `len` counts the bytes after the length field. Bodies:
//!
//! | kind | event | body |
//! |------|-------|------|
//! | 0 | source tx | origin u64, seq u64, dir u8, dst_heard u8, n₁ u32, n₁×u64, n₂ u32, n₂×u64 |
//! | 1 | ack attach | origin, seq, n u32, n×u64 |
//! | 2 | decision | origin, seq, aux u64, prob-bits u64, relayed u8 |
//! | 3 | relay | origin, seq, by u64, via_backplane u8, reached u8 |
//! | 4 | deliver mark | origin, seq |
//! | 5 | aux sample | sec u64, size u64 |
//! | 6 | wireless tx | dir u8 |
//! | 7 | ack tx | dir u8 |
//! | 8 | backplane tx | — |
//! | 9 | ledger delivered | dir u8 |
//! | 10 | backplane drop | — |
//! | 11 | retire | origin, seq |
//! | 12 | ledger totals | 4×u64 up, 4×u64 down, drops u64 |

use std::collections::HashMap;
use std::io::{self, Read, Write};

use vifi_core::{Direction, PacketId};
use vifi_metrics::EfficiencyLedger;
use vifi_phy::NodeId;
use vifi_sim::SimTime;

use crate::fingerprint::Fingerprint;
use crate::logging::{
    median_aux_size, record_digest, ColumnCounts, LogSink, PerfectRelayCounts, PerfectRelayOutcome,
    RelayFate, RunLog, Table1, TxRecord,
};

const K_SOURCE_TX: u8 = 0;
const K_ACK_ATTACH: u8 = 1;
const K_DECISION: u8 = 2;
const K_RELAY: u8 = 3;
const K_DELIVER_MARK: u8 = 4;
const K_AUX_SAMPLE: u8 = 5;
const K_WIRELESS_TX: u8 = 6;
const K_ACK_TX: u8 = 7;
const K_BACKPLANE_TX: u8 = 8;
const K_LEDGER_DELIVERED: u8 = 9;
const K_BACKPLANE_DROP: u8 = 10;
const K_RETIRE: u8 = 11;
const K_LEDGER_TOTALS: u8 = 12;

fn dir_byte(dir: Direction) -> u8 {
    match dir {
        Direction::Upstream => 0,
        Direction::Downstream => 1,
    }
}

fn byte_dir(b: u8) -> io::Result<Direction> {
    match b {
        0 => Ok(Direction::Upstream),
        1 => Ok(Direction::Downstream),
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad direction byte {b}"),
        )),
    }
}

/// A [`LogSink`] that serializes every event as a length-prefixed binary
/// record to `w`. Memory use is one scratch buffer regardless of run
/// length; I/O errors are latched and surfaced by
/// [`BinaryRunLog::finish`].
pub struct BinaryRunLog<W: Write> {
    w: W,
    buf: Vec<u8>,
    records: u64,
    err: Option<io::Error>,
}

impl<W: Write> BinaryRunLog<W> {
    /// Stream records to `w`.
    pub fn new(w: W) -> Self {
        BinaryRunLog {
            w,
            buf: Vec::with_capacity(128),
            records: 0,
            err: None,
        }
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Flush and hand back the writer, surfacing any latched I/O error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        self.w.flush()?;
        Ok(self.w)
    }

    fn emit(&mut self, kind: u8, at: SimTime, body: impl FnOnce(&mut Vec<u8>)) {
        if self.err.is_some() {
            return;
        }
        self.buf.clear();
        self.buf.push(kind);
        self.buf.extend_from_slice(&at.as_micros().to_le_bytes());
        body(&mut self.buf);
        let len = self.buf.len() as u32;
        let res = self
            .w
            .write_all(&len.to_le_bytes())
            .and_then(|()| self.w.write_all(&self.buf));
        match res {
            Ok(()) => self.records += 1,
            Err(e) => self.err = Some(e),
        }
    }
}

fn push_id(buf: &mut Vec<u8>, id: PacketId) {
    buf.extend_from_slice(&id.origin.label().to_le_bytes());
    buf.extend_from_slice(&id.seq.to_le_bytes());
}

fn push_nodes(buf: &mut Vec<u8>, nodes: &[NodeId]) {
    buf.extend_from_slice(&(nodes.len() as u32).to_le_bytes());
    for n in nodes {
        buf.extend_from_slice(&n.label().to_le_bytes());
    }
}

impl<W: Write> LogSink for BinaryRunLog<W> {
    fn source_tx(
        &mut self,
        at: SimTime,
        id: PacketId,
        dir: Direction,
        aux_set: Vec<NodeId>,
        aux_heard: Vec<NodeId>,
        dst_heard: bool,
    ) {
        self.emit(K_SOURCE_TX, at, |b| {
            push_id(b, id);
            b.push(dir_byte(dir));
            b.push(dst_heard as u8);
            push_nodes(b, &aux_set);
            push_nodes(b, &aux_heard);
        });
    }

    fn ack_attach(&mut self, at: SimTime, id: PacketId, heard_by: &[NodeId]) {
        self.emit(K_ACK_ATTACH, at, |b| {
            push_id(b, id);
            push_nodes(b, heard_by);
        });
    }

    fn decision(&mut self, at: SimTime, id: PacketId, aux: NodeId, prob: f64, relayed: bool) {
        self.emit(K_DECISION, at, |b| {
            push_id(b, id);
            b.extend_from_slice(&aux.label().to_le_bytes());
            b.extend_from_slice(&prob.to_bits().to_le_bytes());
            b.push(relayed as u8);
        });
    }

    fn relay(&mut self, at: SimTime, id: PacketId, by: NodeId, via_backplane: bool, reached: bool) {
        self.emit(K_RELAY, at, |b| {
            push_id(b, id);
            b.extend_from_slice(&by.label().to_le_bytes());
            b.push(via_backplane as u8);
            b.push(reached as u8);
        });
    }

    fn deliver_mark(&mut self, at: SimTime, id: PacketId) {
        self.emit(K_DELIVER_MARK, at, |b| push_id(b, id));
    }

    fn aux_sample(&mut self, at: SimTime, sec: u64, size: usize) {
        self.emit(K_AUX_SAMPLE, at, |b| {
            b.extend_from_slice(&sec.to_le_bytes());
            b.extend_from_slice(&(size as u64).to_le_bytes());
        });
    }

    fn wireless_tx(&mut self, at: SimTime, dir: Direction) {
        self.emit(K_WIRELESS_TX, at, |b| b.push(dir_byte(dir)));
    }

    fn ack_tx(&mut self, at: SimTime, dir: Direction) {
        self.emit(K_ACK_TX, at, |b| b.push(dir_byte(dir)));
    }

    fn backplane_tx(&mut self, at: SimTime) {
        self.emit(K_BACKPLANE_TX, at, |_| {});
    }

    fn ledger_delivered(&mut self, at: SimTime, dir: Direction) {
        self.emit(K_LEDGER_DELIVERED, at, |b| b.push(dir_byte(dir)));
    }

    fn backplane_drop_count(&mut self, at: SimTime) {
        self.emit(K_BACKPLANE_DROP, at, |_| {});
    }

    fn retire(&mut self, at: SimTime, id: PacketId) {
        self.emit(K_RETIRE, at, |b| push_id(b, id));
    }

    fn ledger_totals(&mut self, up: [u64; 4], down: [u64; 4], backplane_drops: u64) {
        self.emit(K_LEDGER_TOTALS, SimTime::ZERO, |b| {
            for v in up.iter().chain(down.iter()) {
                b.extend_from_slice(&v.to_le_bytes());
            }
            b.extend_from_slice(&backplane_drops.to_le_bytes());
        });
    }
}

/// Cursor over one record body.
struct Body<'a> {
    b: &'a [u8],
    off: usize,
}

impl<'a> Body<'a> {
    fn u8(&mut self) -> io::Result<u8> {
        let v = *self
            .b
            .get(self.off)
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "truncated record"))?;
        self.off += 1;
        Ok(v)
    }

    fn u32(&mut self) -> io::Result<u32> {
        let s = self
            .b
            .get(self.off..self.off + 4)
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "truncated record"))?;
        self.off += 4;
        Ok(u32::from_le_bytes(s.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        let s = self
            .b
            .get(self.off..self.off + 8)
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "truncated record"))?;
        self.off += 8;
        Ok(u64::from_le_bytes(s.try_into().unwrap()))
    }

    fn id(&mut self) -> io::Result<PacketId> {
        Ok(PacketId {
            origin: NodeId(self.u64()? as u32),
            seq: self.u64()?,
        })
    }

    fn nodes(&mut self) -> io::Result<Vec<NodeId>> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(NodeId(self.u64()? as u32));
        }
        Ok(out)
    }
}

/// Replay a binary trace into any [`LogSink`], returning the number of
/// records consumed. Feeding a trace written by [`BinaryRunLog`] into a
/// fresh [`RunLog`] reconstructs the original log bit-for-bit (same
/// fingerprint); feeding it into a [`StreamFold`] computes the paper's
/// statistics in constant memory.
pub fn read_stream<R: Read, S: LogSink>(mut r: R, sink: &mut S) -> io::Result<u64> {
    let mut count = 0u64;
    let mut body_buf = Vec::with_capacity(128);
    loop {
        let mut len_bytes = [0u8; 4];
        match r.read_exact(&mut len_bytes) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(count),
            Err(e) => return Err(e),
        }
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len < 9 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("record too short: {len} bytes"),
            ));
        }
        body_buf.resize(len, 0);
        r.read_exact(&mut body_buf)?;
        let kind = body_buf[0];
        let at = SimTime::from_micros(u64::from_le_bytes(body_buf[1..9].try_into().unwrap()));
        let mut body = Body {
            b: &body_buf,
            off: 9,
        };
        match kind {
            K_SOURCE_TX => {
                let id = body.id()?;
                let dir = byte_dir(body.u8()?)?;
                let dst_heard = body.u8()? != 0;
                let aux_set = body.nodes()?;
                let aux_heard = body.nodes()?;
                sink.source_tx(at, id, dir, aux_set, aux_heard, dst_heard);
            }
            K_ACK_ATTACH => {
                let id = body.id()?;
                let heard_by = body.nodes()?;
                sink.ack_attach(at, id, &heard_by);
            }
            K_DECISION => {
                let id = body.id()?;
                let aux = NodeId(body.u64()? as u32);
                let prob = f64::from_bits(body.u64()?);
                let relayed = body.u8()? != 0;
                sink.decision(at, id, aux, prob, relayed);
            }
            K_RELAY => {
                let id = body.id()?;
                let by = NodeId(body.u64()? as u32);
                let via = body.u8()? != 0;
                let reached = body.u8()? != 0;
                sink.relay(at, id, by, via, reached);
            }
            K_DELIVER_MARK => {
                let id = body.id()?;
                sink.deliver_mark(at, id);
            }
            K_AUX_SAMPLE => {
                let sec = body.u64()?;
                let size = body.u64()? as usize;
                sink.aux_sample(at, sec, size);
            }
            K_WIRELESS_TX => sink.wireless_tx(at, byte_dir(body.u8()?)?),
            K_ACK_TX => sink.ack_tx(at, byte_dir(body.u8()?)?),
            K_BACKPLANE_TX => sink.backplane_tx(at),
            K_LEDGER_DELIVERED => sink.ledger_delivered(at, byte_dir(body.u8()?)?),
            K_BACKPLANE_DROP => sink.backplane_drop_count(at),
            K_RETIRE => {
                let id = body.id()?;
                sink.retire(at, id);
            }
            K_LEDGER_TOTALS => {
                let mut up = [0u64; 4];
                let mut down = [0u64; 4];
                for v in up.iter_mut().chain(down.iter_mut()) {
                    *v = body.u64()?;
                }
                let drops = body.u64()?;
                sink.ledger_totals(up, down, drops);
            }
            k => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown record kind {k}"),
                ))
            }
        }
        count += 1;
    }
}

/// Everything the streaming fold derives from a trace.
#[derive(Clone, Debug)]
pub struct StreamSummary {
    /// Source-transmission records seen.
    pub records: u64,
    /// The run-log fingerprint — bit-identical to
    /// [`RunLog::fingerprint`](crate::Fingerprintable::fingerprint) of
    /// the equivalent in-memory log.
    pub fingerprint: u64,
    /// Table 1, both directions.
    pub table1: Table1,
    /// Table 2 downstream false-positive rate (B2).
    pub table2_false_positives: f64,
    /// Table 2 downstream false-negative rate (C3).
    pub table2_false_negatives: f64,
    /// The §5.4 PerfectRelay oracle estimate.
    pub perfect_relay: PerfectRelayOutcome,
    /// Upstream efficiency ledger.
    pub ledger_up: EfficiencyLedger,
    /// Downstream efficiency ledger.
    pub ledger_down: EfficiencyLedger,
    /// Backplane drops.
    pub backplane_drops: u64,
    /// High-water mark of simultaneously pending (unfinalized) records —
    /// the fold's working set, bounded by packets in flight rather than
    /// run length.
    pub peak_pending: usize,
}

/// Per-id working state of the fold.
struct IdState {
    next_attempt: u32,
    /// Unfinalized records of this id, creation order, with their global
    /// creation index.
    pending: Vec<(u64, TxRecord)>,
    /// The oracle delivered this id (per-id dedup of
    /// [`PerfectRelayCounts::add_record`]).
    oracle_delivered: Option<Direction>,
}

/// A [`LogSink`] that folds the event stream straight into the derived
/// statistics. See the module docs for the finalization rules that keep
/// its fingerprint bit-identical to the in-memory path.
#[derive(Default)]
pub struct StreamFold {
    ids: HashMap<PacketId, IdState>,
    digest_sum: u64,
    record_count: u64,
    next_index: u64,
    counts_up: ColumnCounts,
    counts_down: ColumnCounts,
    oracle: PerfectRelayCounts,
    aux_sizes: Vec<(u64, usize)>,
    ledger_up: EfficiencyLedger,
    ledger_down: EfficiencyLedger,
    backplane_drops: u64,
    pending_now: usize,
    peak_pending: usize,
}

impl StreamFold {
    /// Fresh fold.
    pub fn new() -> Self {
        Self::default()
    }

    fn ledger_mut(&mut self, dir: Direction) -> &mut EfficiencyLedger {
        match dir {
            Direction::Upstream => &mut self.ledger_up,
            Direction::Downstream => &mut self.ledger_down,
        }
    }

    /// Fold a finalized record into digest sum, Table 1 counts and the
    /// oracle. Requires that no later event mutates the record.
    fn finalize(
        digest_sum: &mut u64,
        counts_up: &mut ColumnCounts,
        counts_down: &mut ColumnCounts,
        oracle: &mut PerfectRelayCounts,
        state_oracle: &mut Option<Direction>,
        index: u64,
        rec: &TxRecord,
    ) {
        *digest_sum = digest_sum.wrapping_add(record_digest(index, rec));
        match rec.dir {
            Direction::Upstream => counts_up.add_record(rec),
            Direction::Downstream => counts_down.add_record(rec),
        }
        if oracle.add_record(rec) && state_oracle.is_none() {
            *state_oracle = Some(rec.dir);
        }
    }

    fn retire_id(&mut self, id: PacketId) {
        if let Some(mut state) = self.ids.remove(&id) {
            self.pending_now -= state.pending.len();
            for (index, rec) in state.pending.drain(..) {
                Self::finalize(
                    &mut self.digest_sum,
                    &mut self.counts_up,
                    &mut self.counts_down,
                    &mut self.oracle,
                    &mut state.oracle_delivered,
                    index,
                    &rec,
                );
            }
            match state.oracle_delivered {
                Some(Direction::Upstream) => self.oracle.up_delivered += 1,
                Some(Direction::Downstream) => self.oracle.down_delivered += 1,
                None => {}
            }
        }
    }

    /// Finalize everything still pending (ids the stream never retired)
    /// and produce the summary.
    pub fn finish(mut self) -> StreamSummary {
        let ids: Vec<PacketId> = self.ids.keys().copied().collect();
        for id in ids {
            self.retire_id(id);
        }
        let a1 = median_aux_size(&self.aux_sizes);
        // Reproduce RunLog::fingerprint_into exactly: record count, the
        // commutative digest sum, aux samples in order, ledgers, drops.
        let mut fp = Fingerprint::new();
        fp.push_len(self.record_count as usize);
        fp.push_u64(self.digest_sum);
        fp.push_len(self.aux_sizes.len());
        for &(sec, size) in &self.aux_sizes {
            fp.push_u64(sec);
            fp.push_len(size);
        }
        for ledger in [&self.ledger_up, &self.ledger_down] {
            fp.push_u64(ledger.wireless_tx);
            fp.push_u64(ledger.backplane_tx);
            fp.push_u64(ledger.ack_tx);
            fp.push_u64(ledger.delivered);
        }
        fp.push_u64(self.backplane_drops);

        let table1 = Table1 {
            up: self.counts_up.into_column(a1),
            down: self.counts_down.into_column(a1),
        };
        StreamSummary {
            records: self.record_count,
            fingerprint: fp.finish(),
            table2_false_positives: table1.down.b2_false_positive,
            table2_false_negatives: table1.down.c3_false_negative,
            table1,
            perfect_relay: self.oracle.into_outcome(),
            ledger_up: self.ledger_up,
            ledger_down: self.ledger_down,
            backplane_drops: self.backplane_drops,
            peak_pending: self.peak_pending,
        }
    }
}

impl LogSink for StreamFold {
    fn source_tx(
        &mut self,
        at: SimTime,
        id: PacketId,
        dir: Direction,
        aux_set: Vec<NodeId>,
        aux_heard: Vec<NodeId>,
        dst_heard: bool,
    ) {
        let index = self.next_index;
        self.next_index += 1;
        self.record_count += 1;
        let state = self.ids.entry(id).or_insert_with(|| IdState {
            next_attempt: 0,
            pending: Vec::new(),
            oracle_delivered: None,
        });
        let attempt = state.next_attempt;
        state.next_attempt += 1;
        // Earlier records of this id that are already marked delivered
        // can never change again (the flag only goes false → true and
        // attachments only target the latest record): finalize them now
        // so long-lived ids do not pile up working state.
        let mut i = 0;
        while i < state.pending.len() {
            if state.pending[i].1.delivered {
                let (idx, rec) = state.pending.remove(i);
                Self::finalize(
                    &mut self.digest_sum,
                    &mut self.counts_up,
                    &mut self.counts_down,
                    &mut self.oracle,
                    &mut state.oracle_delivered,
                    idx,
                    &rec,
                );
                self.pending_now -= 1;
            } else {
                i += 1;
            }
        }
        state.pending.push((
            index,
            TxRecord {
                id,
                attempt,
                dir,
                at,
                aux_set,
                aux_heard,
                dst_heard,
                ack_heard_by: Vec::new(),
                decisions: Vec::new(),
                relays: Vec::new(),
                delivered: false,
            },
        ));
        self.pending_now += 1;
        self.peak_pending = self.peak_pending.max(self.pending_now);
    }

    fn ack_attach(&mut self, _at: SimTime, id: PacketId, heard_by: &[NodeId]) {
        if let Some(state) = self.ids.get_mut(&id) {
            if let Some((_, r)) = state.pending.last_mut() {
                // Same membership/dedup rule as RunLog::on_ack_heard.
                for n in heard_by {
                    if r.aux_set.contains(n) && !r.ack_heard_by.contains(n) {
                        r.ack_heard_by.push(*n);
                    }
                }
            }
        }
    }

    fn decision(&mut self, _at: SimTime, id: PacketId, aux: NodeId, prob: f64, relayed: bool) {
        if let Some(state) = self.ids.get_mut(&id) {
            if let Some((_, r)) = state.pending.last_mut() {
                r.decisions.push((aux, prob, relayed));
            }
        }
    }

    fn relay(
        &mut self,
        _at: SimTime,
        id: PacketId,
        by: NodeId,
        via_backplane: bool,
        reached: bool,
    ) {
        if let Some(state) = self.ids.get_mut(&id) {
            if let Some((_, r)) = state.pending.last_mut() {
                r.relays.push(RelayFate {
                    by,
                    via_backplane,
                    reached_dst: reached,
                });
            }
        }
    }

    fn deliver_mark(&mut self, _at: SimTime, id: PacketId) {
        if let Some(state) = self.ids.get_mut(&id) {
            for (_, r) in &mut state.pending {
                r.delivered = true;
            }
        }
    }

    fn aux_sample(&mut self, _at: SimTime, sec: u64, size: usize) {
        if self.aux_sizes.last().map(|&(s, _)| s) != Some(sec) {
            self.aux_sizes.push((sec, size));
        }
    }

    fn wireless_tx(&mut self, _at: SimTime, dir: Direction) {
        self.ledger_mut(dir).on_wireless_tx();
    }

    fn ack_tx(&mut self, _at: SimTime, dir: Direction) {
        self.ledger_mut(dir).on_ack_tx();
    }

    fn backplane_tx(&mut self, _at: SimTime) {
        self.ledger_up.on_backplane_tx();
    }

    fn ledger_delivered(&mut self, _at: SimTime, dir: Direction) {
        self.ledger_mut(dir).on_delivered();
    }

    fn backplane_drop_count(&mut self, _at: SimTime) {
        self.backplane_drops += 1;
    }

    fn retire(&mut self, _at: SimTime, id: PacketId) {
        self.retire_id(id);
    }

    fn ledger_totals(&mut self, up: [u64; 4], down: [u64; 4], backplane_drops: u64) {
        for (ledger, t) in [(&mut self.ledger_up, up), (&mut self.ledger_down, down)] {
            ledger.wireless_tx += t[0];
            ledger.backplane_tx += t[1];
            ledger.ack_tx += t[2];
            ledger.delivered += t[3];
        }
        self.backplane_drops += backplane_drops;
    }
}

impl RunLog {
    /// Serialize this log as a binary trace (see the module docs for the
    /// record framing) and hand back the writer.
    pub fn write_binary<W: Write>(&self, w: W) -> io::Result<W> {
        let mut sink = BinaryRunLog::new(w);
        self.replay_into(&mut sink);
        sink.finish()
    }

    /// Fold this log's replayed event stream with [`StreamFold`] —
    /// convenience for tests and tools that want the streaming summary
    /// without a byte round-trip.
    pub fn stream_summary(&self) -> StreamSummary {
        let mut fold = StreamFold::new();
        self.replay_into(&mut fold);
        fold.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fingerprintable;

    fn id(origin: u32, seq: u64) -> PacketId {
        PacketId {
            origin: NodeId(origin),
            seq,
        }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    /// Build a small but featureful log: retransmissions, acks,
    /// decisions, relays (both planes), deliveries, aux samples, ledger
    /// traffic.
    fn sample_log() -> RunLog {
        let mut log = RunLog::new();
        let aux = |n: u32| (10..10 + n).map(NodeId).collect::<Vec<_>>();
        log.on_aux_sample(0, 3);
        log.on_aux_sample(1, 2);
        for seq in 0..4u64 {
            log.on_source_tx(
                id(0, seq),
                Direction::Upstream,
                t(seq * 10),
                aux(3),
                vec![NodeId(10)],
                seq % 2 == 0,
            );
            log.ledger_up.on_wireless_tx();
        }
        // Retransmission chain for seq 1.
        log.on_source_tx(
            id(0, 1),
            Direction::Upstream,
            t(100),
            aux(3),
            vec![NodeId(10), NodeId(11)],
            false,
        );
        log.on_ack_heard(id(0, 1), &[NodeId(10), NodeId(99)]);
        log.on_decision(id(0, 1), NodeId(11), 0.7, true);
        log.on_relay(id(0, 1), NodeId(11), true, true);
        log.on_delivered(id(0, 1));
        log.ledger_up.on_backplane_tx();
        log.ledger_up.on_delivered();
        // A downstream packet.
        log.on_source_tx(
            id(5, 9),
            Direction::Downstream,
            t(200),
            aux(2),
            vec![NodeId(10)],
            false,
        );
        log.on_decision(id(5, 9), NodeId(10), 0.5, true);
        log.on_relay(id(5, 9), NodeId(10), false, true);
        log.on_delivered(id(5, 9));
        log.ledger_down.on_wireless_tx();
        log.ledger_down.on_delivered();
        log.backplane_drops = 2;
        log
    }

    #[test]
    fn replay_into_runlog_reproduces_fingerprint() {
        let log = sample_log();
        let mut rebuilt = RunLog::new();
        log.replay_into(&mut rebuilt);
        assert_eq!(log.fingerprint(), rebuilt.fingerprint());
        assert_eq!(log.records.len(), rebuilt.records.len());
    }

    #[test]
    fn binary_roundtrip_reproduces_fingerprint() {
        let log = sample_log();
        let bytes = log.write_binary(Vec::new()).unwrap();
        let mut rebuilt = RunLog::new();
        read_stream(&bytes[..], &mut rebuilt).unwrap();
        assert_eq!(log.fingerprint(), rebuilt.fingerprint());
    }

    #[test]
    fn stream_fold_matches_in_memory_stats() {
        let log = sample_log();
        let bytes = log.write_binary(Vec::new()).unwrap();
        let mut fold = StreamFold::new();
        read_stream(&bytes[..], &mut fold).unwrap();
        let s = fold.finish();
        assert_eq!(s.fingerprint, log.fingerprint(), "fingerprint");
        assert_eq!(s.records, log.records.len() as u64);
        let t1 = Table1::from_log(&log);
        assert_eq!(
            s.table1.up.b1_src_reach.to_bits(),
            t1.up.b1_src_reach.to_bits()
        );
        assert_eq!(
            s.table1.down.b2_false_positive.to_bits(),
            t1.down.b2_false_positive.to_bits()
        );
        assert_eq!(
            s.table1.up.a3_aux_hear_tx_not_ack.to_bits(),
            t1.up.a3_aux_hear_tx_not_ack.to_bits()
        );
        let pr = PerfectRelayOutcome::from_log(&log);
        assert_eq!(
            s.perfect_relay.efficiency_up.to_bits(),
            pr.efficiency_up.to_bits()
        );
        assert_eq!(
            s.perfect_relay.efficiency_down.to_bits(),
            pr.efficiency_down.to_bits()
        );
        assert_eq!(s.backplane_drops, log.backplane_drops);
        assert_eq!(s.ledger_up.backplane_tx, log.ledger_up.backplane_tx);
    }

    #[test]
    fn retire_bounds_pending_state() {
        // Many sequential ids, each retired before the next: the peak
        // pending working set stays at 1 no matter how many records.
        let mut sink = StreamFold::new();
        for seq in 0..1000u64 {
            sink.source_tx(
                t(seq),
                id(0, seq),
                Direction::Upstream,
                vec![NodeId(10)],
                vec![NodeId(10)],
                true,
            );
            sink.deliver_mark(t(seq), id(0, seq));
            sink.retire(t(seq), id(0, seq));
        }
        sink.ledger_totals([0; 4], [0; 4], 0);
        let s = sink.finish();
        assert_eq!(s.records, 1000);
        assert_eq!(s.peak_pending, 1, "working set bounded by in-flight ids");
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let log = sample_log();
        let bytes = log.write_binary(Vec::new()).unwrap();
        let mut fold = StreamFold::new();
        assert!(read_stream(&bytes[..bytes.len() - 3], &mut fold).is_err());
    }

    #[test]
    fn out_of_order_finalization_is_fingerprint_invariant() {
        // Interleaved ids with late deliveries: records finalize in a
        // different order than they were created, and the commutative
        // digest still matches the in-memory log.
        let mut log = RunLog::new();
        for seq in 0..6u64 {
            log.on_source_tx(
                id(0, seq % 3),
                Direction::Upstream,
                t(seq * 5),
                vec![NodeId(10), NodeId(11)],
                vec![NodeId(10)],
                false,
            );
        }
        log.on_delivered(id(0, 1));
        let bytes = log.write_binary(Vec::new()).unwrap();
        let mut fold = StreamFold::new();
        read_stream(&bytes[..], &mut fold).unwrap();
        assert_eq!(fold.finish().fingerprint, log.fingerprint());
    }
}
