//! # vifi-runtime — the deployment in a box
//!
//! This crate assembles everything below it into the two experimental
//! apparatuses of §5.1:
//!
//! * **Deployment mode** — a [`vifi_testbeds::Scenario`] drives a
//!   [`vifi_phy::PhysicalLinkModel`]; every node runs a
//!   [`vifi_core::Endpoint`] over the CSMA [`vifi_mac::Medium`] and the
//!   bandwidth-limited [`vifi_mac::Backplane`]; an application workload
//!   ([`workload`]) rides on top. This is the stand-in for the live
//!   VanLAN prototype.
//! * **Trace-driven mode** — a [`vifi_testbeds::trace::TraceSimSetup`]
//!   supplies the link model instead (per-second beacon loss ratios, the
//!   §5.1 rules); everything above the channel is identical. This is the
//!   stand-in for the authors' QualNet setup, and the pair lets us run
//!   the paper's validation (same measurements, both modes).
//!
//! [`logging::RunLog`] records every transmission, reception, relay
//! decision and delivery; Tables 1 and 2, the Fig. 12 efficiency bars and
//! the PerfectRelay oracle (§5.4) are all *post-processed* from that log,
//! exactly as the paper derives them from its packet logs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod logging;
pub mod sim;
pub mod workload;

pub use logging::{PerfectRelayOutcome, RunLog, Table1, Table2Row};
pub use sim::{RunConfig, RunOutcome, Simulation};
pub use workload::{TcpStats, VoipStats, WorkloadReport, WorkloadSpec};
