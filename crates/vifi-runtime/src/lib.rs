//! # vifi-runtime — the deployment in a box
//!
//! This crate assembles everything below it into the two experimental
//! apparatuses of §5.1:
//!
//! * **Deployment mode** — a [`vifi_testbeds::Scenario`] drives a
//!   [`vifi_phy::PhysicalLinkModel`]; every node runs a
//!   [`vifi_core::Endpoint`] over the CSMA medium
//!   ([`vifi_mac::SharedMediumService`]) and the
//!   bandwidth-limited [`vifi_mac::Backplane`]; an application workload
//!   ([`workload`]) rides on top. This is the stand-in for the live
//!   VanLAN prototype.
//! * **Trace-driven mode** — a [`vifi_testbeds::trace::TraceSimSetup`]
//!   supplies the link model instead (per-second beacon loss ratios, the
//!   §5.1 rules); everything above the channel is identical. This is the
//!   stand-in for the authors' QualNet setup, and the pair lets us run
//!   the paper's validation (same measurements, both modes).
//!
//! [`logging::RunLog`] records every transmission, reception, relay
//! decision and delivery; Tables 1 and 2, the Fig. 12 efficiency bars and
//! the PerfectRelay oracle (§5.4) are all *post-processed* from that log,
//! exactly as the paper derives them from its packet logs.
//!
//! ## Fleet runs
//!
//! The paper instruments one vehicle; this runtime can instrument a whole
//! fleet. Setting [`RunConfig::fleet_workloads`] gives every vehicle in
//! the scenario its own workload driver and wired path (vehicle *i* takes
//! entry `i % len`), and [`RunOutcome::vehicles`] carries one
//! [`sim::VehicleOutcome`] per vehicle. The packet-level [`RunLog`] keeps
//! following the first vehicle only.
//!
//! Fleet quickstart (the multi-vehicle mirror of `examples/quickstart.rs`):
//!
//! ```
//! use vifi_runtime::{RunConfig, Simulation, WorkloadSpec};
//! use vifi_sim::SimDuration;
//! use vifi_testbeds::vanlan;
//!
//! // Two vans on per-vehicle routes, each carrying the paper's CBR
//! // probe workload and contending for the same eleven basestations.
//! let scenario = vanlan(2);
//! let cfg = RunConfig {
//!     fleet_workloads: vec![WorkloadSpec::paper_cbr()],
//!     duration: SimDuration::from_secs(30),
//!     seed: 7,
//!     ..RunConfig::default()
//! };
//! let outcome = Simulation::deployment(&scenario, cfg).run();
//! assert_eq!(outcome.vehicles.len(), 2, "one outcome per van");
//! let fleet = vifi_runtime::workload::aggregate_cbr(
//!     outcome.vehicles.iter().map(|v| &v.report),
//! );
//! assert!(fleet.total_sent() > 0);
//! ```
//!
//! ## Sharded runs
//!
//! Large fleet runs shard across cores with [`RunConfig::shards`],
//! [`RunConfig::shard_mode`] and [`Simulation::run_sharded`], two ways:
//!
//! * [`ShardMode::Independent`] (default) decomposes by vehicle, each
//!   simulated against the full infrastructure under an RNG stream keyed
//!   by `(run_seed, vehicle)`; outcomes merge deterministically in
//!   vehicle order and are bit-identical for every shard count `>= 2` —
//!   but cross-vehicle contention is dropped.
//! * [`ShardMode::Coupled`] splits the *one* coupled run across shards on
//!   the epoch-synchronized engine, preserving the shared medium; the
//!   result is bit-identical to the sequential `shards = 1` run at every
//!   shard and worker count.
//!
//! [`RunOutcome::fingerprint`] is the equality the equivalence suite
//! asserts for both claims. See [`sim`]'s module docs for when each mode
//! is valid.
//!
//! ```
//! use vifi_runtime::{RunConfig, Simulation, WorkloadSpec};
//! use vifi_sim::SimDuration;
//! use vifi_testbeds::vanlan;
//!
//! let scenario = vanlan(4);
//! let cfg = RunConfig {
//!     fleet_workloads: vec![WorkloadSpec::paper_cbr()],
//!     duration: SimDuration::from_secs(10),
//!     seed: 7,
//!     shards: 2,
//!     ..RunConfig::default()
//! };
//! let a = Simulation::run_sharded(&scenario, cfg.clone());
//! let b = Simulation::run_sharded(&scenario, RunConfig { shards: 4, ..cfg });
//! assert_eq!(a.fingerprint(), b.fingerprint(), "invariant to shard count");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binlog;
mod engine;
pub mod fingerprint;
pub mod logging;
pub mod sim;
pub mod workload;

pub use binlog::{read_stream, BinaryRunLog, StreamFold, StreamSummary};
pub use engine::CoupledTiming;
pub use fingerprint::{Fingerprint, Fingerprintable};
pub use logging::{LogSink, PerfectRelayOutcome, RunLog, Table1, Table2Row};
pub use sim::{
    plan_shards, FaultStats, RunConfig, RunOutcome, ShardAssignment, ShardMode, ShardPlan,
    ShardTiming, Simulation, VehicleOutcome,
};
pub use workload::{aggregate_cbr, CbrStats, TcpStats, VoipStats, WorkloadReport, WorkloadSpec};
