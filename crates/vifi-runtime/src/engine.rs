//! The epoch-synchronized simulation engine behind every coupled run.
//!
//! One engine executes one experiment as a set of **shards**, each owning
//! a disjoint subset of the nodes (its *lanes*): the shard holds those
//! nodes' endpoints, workload hosts and pending events in its own
//! [`Scheduler`], plus its own lazily-populated link-model instance. Time
//! is divided into epochs by an [`EpochSchedule`]; within an epoch every
//! shard dispatches only its own lanes' events, and **all inter-node
//! effects cross at the epoch barrier** in canonically sorted batches:
//!
//! * transmission requests → [`SharedMediumService::place_batch`] in
//!   `(request time, sender)` order (global carrier sense + backoff);
//! * reception resolution → each shard samples *its own* receivers of
//!   every ending frame through the pure MAC kernel and per-link
//!   sampling streams;
//! * backplane sends → one [`Backplane::send_batch`] per instant in
//!   sender order (drops deterministic);
//! * wired hops and anchor hand-offs → routed with timestamps no earlier
//!   than the barrier;
//! * packet-log mutations → buffered as timestamped ops and replayed in
//!   one canonical order at the end of the run.
//!
//! Because every cross-lane channel is mediated this way **even when both
//! lanes share a shard**, the outcome is a pure function of
//! `(config, seed, schedule)` — never of the partition or of how many
//! worker threads execute it. `shards = 1` is literally the same machine
//! with one shard; that is the bit-identity `tests/shard_equivalence.rs`
//! pins for `ShardMode::Coupled`.
//!
//! Relative to the pre-PR-5 per-event loop this changes the observable
//! semantics in one bounded way: a frame requested during an epoch airs
//! from the next epoch edge (at most one sync quantum of extra access
//! latency — 1 ms at the default — plus normal contention queueing), and
//! wired/backplane deliveries never land before the barrier that routes
//! them. Contention physics — deferral, half duplex, hidden-terminal
//! collisions, the shared serializer — is exactly the global model, which
//! is the point: sharded coupled runs keep it.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};
use std::time::{Duration, Instant};

use bytes::Bytes;
use vifi_core::endpoint::BackplaneMsg;
use vifi_core::{
    AckView, Action, DataView, Direction, Endpoint, PacketId, Role, StatEvent, VifiPayload,
};
use vifi_mac::medium::kernel;
use vifi_mac::{
    Backplane, BeaconSchedule, Frame, PartitionProbes, PlacedGroup, PlacementGroup, ResolvableTx,
    SharedMediumService, TxHandle, TxRequest, WireFrame,
};
use vifi_phy::{LinkModel, NodeId};
use vifi_sim::{
    EpochBarrier, EpochSchedule, HierarchicalSchedule, NestedEpochBarrier, Rng, Scheduler, SimTime,
    TimerToken,
};

use crate::logging::{LogSink, RunLog};
use crate::sim::{FaultStats, RunConfig, RunOutcome, VehicleOutcome};
use crate::workload::{build_driver, Driver, HostApi, HostCmd};

/// A link model the engine can hand to worker threads.
pub(crate) type EngineLink = Box<dyn LinkModel + Send>;

/// Per-lane events. The lane (owning node) travels alongside in the
/// scheduler payload.
enum Ev {
    /// The lane's beacon is due.
    Beacon,
    /// The lane's transmission finished airing; its interface is free.
    TxDone,
    /// A frame reached this lane (resolved by the reception kernel),
    /// still in packed wire form; decoded at dispatch.
    Rx(WireFrame),
    /// The lane's protocol timer fired.
    Wakeup,
    /// A backplane message arrived at this lane.
    BackplaneArrive { from: NodeId, msg: BackplaneMsg },
    /// A downstream app payload reached this vehicle's wired side.
    WiredDownArrive { payload: Bytes },
    /// A vehicle's downstream payload handed to this lane (its anchor).
    AnchorDown { vehicle: NodeId, payload: Bytes },
    /// An upstream payload reached this vehicle's Internet peer.
    WiredUpArrive { payload: Bytes, radio_exit: SimTime },
    /// Workload tick for this vehicle's driver.
    AppTick { chan: u8 },
    /// End of a fault-plan crash window: this lane's node restarts with a
    /// fresh endpoint (crashed state is lost, like a real reboot).
    FaultUp,
}

/// One vehicle's workload host: its driver, RNG stream, and counters.
struct VehicleHost {
    /// Taken out while the driver runs (so the host API can borrow `rng`).
    driver: Option<Box<dyn Driver>>,
    rng: Rng,
    anchor_switches: u64,
    unroutable_down: u64,
}

/// Everything one lane owns.
struct NodeCell {
    endpoint: Endpoint,
    iface_busy: bool,
    pending_beacon: Option<(VifiPayload, u32)>,
    wakeup_token: Option<TimerToken>,
    host: Option<VehicleHost>,
    /// Per-lane sequence for buffered cross-barrier emissions (canonical
    /// tie-break: a lane's emissions replay in emission order).
    emit_seq: u64,
    /// How many times this node restarted after a crash window (also the
    /// fork label of the next restart's RNG stream).
    restarts: u64,
    /// Blacklist evictions accumulated by endpoints this cell already
    /// discarded on restart.
    carried_evictions: u64,
}

/// A buffered packet-log mutation, replayed in `(at, lane, seq)` order at
/// the end of the run — the canonical order every partition produces.
struct LogOp {
    at: SimTime,
    lane: u64,
    seq: u64,
    op: LogOpKind,
}

enum LogOpKind {
    SourceTx {
        id: PacketId,
        dir: Direction,
        aux_set: Vec<NodeId>,
        aux_heard: Vec<NodeId>,
        dst_heard: bool,
    },
    AckHeard {
        id: PacketId,
        heard_by: Vec<NodeId>,
        dir: Direction,
    },
    Relay {
        id: PacketId,
        by: NodeId,
        via_backplane: bool,
        reached: bool,
    },
    Decision {
        id: PacketId,
        aux: NodeId,
        prob: f64,
        relayed: bool,
    },
    Delivered {
        id: PacketId,
        dir: Direction,
    },
    WirelessTx {
        dir: Direction,
    },
    BackplaneTx,
    BackplaneDrop {
        relay: Option<(PacketId, NodeId)>,
    },
    AuxSample {
        sec: u64,
        size: usize,
    },
}

/// Sequence-number namespaces for coordinator-emitted ops, so they order
/// deterministically against (and after) same-instant lane ops.
const SEQ_RESOLUTION: u64 = 1 << 32;
const SEQ_BARRIER: u64 = 1 << 33;

/// A backplane send buffered during an epoch.
struct BpSend {
    t: SimTime,
    from: NodeId,
    to: NodeId,
    bytes: u32,
    msg: BackplaneMsg,
    lane_seq: u64,
    /// Which delivery attempt this is (0 = the original send; bumped by
    /// the bounded-retry machinery when a partition or spike eats it).
    attempt: u32,
}

/// A cross-lane message buffered during an epoch.
enum XMsg {
    AnchorDown {
        anchor: NodeId,
        vehicle: NodeId,
        payload: Bytes,
        lane_seq: u64,
    },
    WiredUp {
        vehicle: NodeId,
        from: NodeId,
        payload: Bytes,
        radio_exit: SimTime,
        at: SimTime,
        lane_seq: u64,
    },
}

impl XMsg {
    /// Canonical routing order: by target lane, then time, then source
    /// lane and its emission sequence.
    fn key(&self) -> (u64, SimTime, u64, u64) {
        match self {
            XMsg::AnchorDown {
                vehicle, lane_seq, ..
            } => (vehicle.label(), SimTime::ZERO, vehicle.label(), *lane_seq),
            XMsg::WiredUp {
                vehicle,
                from,
                at,
                lane_seq,
                ..
            } => (vehicle.label(), *at, from.label(), *lane_seq),
        }
    }
}

/// One shard: a disjoint set of lanes plus their scheduler, link-model
/// instance, and epoch outboxes.
struct Shard {
    /// Lanes owned by this shard, in node-id order.
    nodes: Vec<NodeId>,
    sched: Scheduler<(NodeId, Ev)>,
    cells: HashMap<NodeId, NodeCell>,
    link: EngineLink,
    // ---- epoch outboxes, drained at every barrier ----
    tx_requests: Vec<TxRequest<WireFrame>>,
    bp_sends: Vec<BpSend>,
    x_msgs: Vec<XMsg>,
    log_ops: Vec<LogOp>,
    /// Reception reports of the current resolution phase:
    /// `(frame handle, receiver)`.
    reports: Vec<(TxHandle, NodeId)>,
    salvaged: u64,
    /// Fault-degradation counters for events on this shard's own lanes
    /// (summed across shards at the end; each event belongs to exactly
    /// one lane, so the sum is partition-invariant).
    faults: FaultStats,
    /// Wall-clock this shard spent executing epochs + resolving
    /// receptions — the per-shard cost a dedicated core would bear.
    wall: Duration,
}

/// Frame metadata the coordinator keeps from placement to resolution.
struct FrameMeta {
    /// Aux-set snapshot for the instrumented vehicle's source data frames
    /// (read from the vehicle's endpoint at the placement barrier).
    aux_set: Option<Vec<NodeId>>,
}

/// Barrier products the shards read during the parallel resolution phase.
#[derive(Default)]
struct Staged {
    /// `(sender, end)` of every window placed at this barrier, in batch
    /// order — each shard schedules `TxDone` for its own senders.
    placements: Vec<(NodeId, SimTime)>,
    /// Frames whose airtime ends before the next boundary, canonical
    /// `(end, src)` order, with complete overlap snapshots.
    resolvable: Vec<ResolvableTx<WireFrame>>,
}

/// Staging area the parallel barrier phases hand work through. The
/// leader fills it in the collect/split phases (behind the write lock);
/// workers read it concurrently to evaluate audibility probes and place
/// groups, claiming work through the engine's shared cursor.
#[derive(Default)]
struct BarrierScratch {
    /// The epoch's sorted transmission batch, awaiting the split phase.
    requests: Vec<TxRequest<WireFrame>>,
    /// Frame metas in batch order (consumed by the merge phase).
    metas: Vec<FrameMeta>,
    /// Batch senders in batch order (for the staged placements).
    senders: Vec<NodeId>,
    /// Backplane sends and cross-lane messages awaiting the route phase.
    bp: Vec<BpSend>,
    xs: Vec<XMsg>,
    /// The barrier instant the batch places at.
    at: SimTime,
    /// Audibility probe plan for the batch partition (collect → probe
    /// phase), and the workers' answers (probe → split phase).
    probes: Option<PartitionProbes>,
    audible: Vec<AtomicBool>,
    /// Placement jobs (split → place phase); each taken exactly once.
    jobs: Vec<Mutex<Option<PlacementGroup<WireFrame>>>>,
}

/// The node partition of an engine run: per shard, the lanes it owns.
#[derive(Clone, Debug)]
pub(crate) struct EnginePartition {
    /// One entry per shard: all owned nodes (vehicles and basestations),
    /// each node appearing in exactly one shard.
    pub lanes: Vec<Vec<NodeId>>,
}

impl EnginePartition {
    /// Everything in one shard — the `shards = 1` machine.
    pub fn single(mut nodes: Vec<NodeId>) -> Self {
        nodes.sort_by_key(|n| n.index());
        EnginePartition { lanes: vec![nodes] }
    }
}

/// Wall-clock accounting of one coupled run: per-shard epoch work and the
/// coordinator's serial barrier work. The critical path of the plan is
/// `serial + max(per_shard)` — what the run costs once every shard has
/// its own core.
#[derive(Clone, Debug)]
pub struct CoupledTiming {
    /// Per-shard wall-clock (epoch execution + reception resolution), in
    /// shard order.
    pub per_shard: Vec<Duration>,
    /// Serial coordinator wall-clock (placement, backplane, routing).
    pub serial: Duration,
}

impl CoupledTiming {
    /// The plan's critical path: serial work plus the slowest shard.
    pub fn critical_path(&self) -> Duration {
        self.serial
            + self
                .per_shard
                .iter()
                .copied()
                .max()
                .unwrap_or(Duration::ZERO)
    }
}

/// Inputs of an engine run, assembled by `Simulation`.
pub(crate) struct EngineSetup {
    pub cfg: RunConfig,
    pub vehicles: Vec<NodeId>,
    pub bs_ids: Vec<NodeId>,
    /// Builds one link-model instance; called once per shard plus once
    /// for the coordinator. Instances built from the same config agree
    /// link-for-link (per-link forked streams), which is what makes the
    /// partition irrelevant.
    pub link_factory: Box<dyn Fn() -> EngineLink>,
    pub schedule: EpochSchedule,
    /// Hierarchical epoch schedule for multi-cluster scenarios; `Some`
    /// switches the engine into nested-barrier mode (see the module
    /// docs). Must come with a matching `clusters` decomposition.
    pub hierarchy: Option<HierarchicalSchedule>,
    /// The contact-cluster decomposition behind `hierarchy`: every node
    /// in exactly one cluster, clusters radio-disjoint. Empty when the
    /// run is flat.
    pub clusters: Vec<Vec<NodeId>>,
    pub partition: EnginePartition,
    /// Base scheduler-shard id (micro-shards of an Independent run stamp
    /// their queues so timer tokens stay distinct across sub-runs).
    pub base_shard_id: u32,
    /// Worker threads to execute the shards on (clamped to shard count).
    pub workers: usize,
}

/// Run the engine to completion.
pub(crate) fn run(setup: EngineSetup) -> (RunOutcome, CoupledTiming) {
    Engine::build(setup).run()
}

/// Per-cluster radio runtime of a nested (hierarchical) run: the
/// cluster's own shared-medium service, link-model instance, frame metas
/// and buffered instrumentation ops. Clusters are radio-disjoint, so each
/// cluster's fine barriers only ever touch its own `ClusterRt` — that is
/// what lets clusters synchronize without stalling each other. Every
/// cluster's medium forks its backoff streams from the same `"mac"` root
/// (per-node streams are keyed by node label, so the split changes
/// nothing), and handles are namespaced per cluster via
/// [`SharedMediumService::with_handle_base`] so they stay globally
/// unique.
struct ClusterRt {
    medium: SharedMediumService<WireFrame>,
    link: EngineLink,
    meta: HashMap<TxHandle, FrameMeta>,
    /// Resolution ops of this cluster's frames, appended to the global
    /// log stream (cluster-index order) at outcome assembly — canonical
    /// because the final `(at, lane, seq)` sort is partition-blind.
    log_ops: Vec<LogOp>,
}

/// Globally shared, barrier-serial state.
struct Coordinator {
    medium: SharedMediumService<WireFrame>,
    backplane: Backplane,
    link: EngineLink,
    meta: HashMap<TxHandle, FrameMeta>,
    log_ops: Vec<LogOp>,
    serial_wall: Duration,
    /// Monotone namespace counter for coordinator-emitted drop ops.
    drop_seq: u64,
    /// Loss draws for backplane spike windows. Only consumed while a
    /// spike is active, in canonical batch order, in the single-threaded
    /// barrier section — so the stream is identical for every partition
    /// and untouched by unfaulted runs.
    fault_rng: Rng,
    /// Backplane messages awaiting their retry instant.
    retries: Vec<BpSend>,
    /// Coordinator-side fault counters (backplane drops and retries).
    tally: FaultStats,
}

struct Engine {
    cfg: RunConfig,
    vehicles: Vec<NodeId>,
    bs_ids: Vec<NodeId>,
    beacons: BeaconSchedule,
    schedule: EpochSchedule,
    shards: Vec<Mutex<Shard>>,
    /// Which shard owns each node.
    owner: HashMap<NodeId, usize>,
    coord: Mutex<Coordinator>,
    staged: RwLock<Staged>,
    /// Parallel-barrier staging (probe plan, placement jobs).
    scratch: RwLock<BarrierScratch>,
    /// Work-claim cursor for the probe and place phases (reset by the
    /// leader while every other worker is parked at the next wait).
    cursor: AtomicUsize,
    /// Placed groups accumulated by the place phase, merged canonically.
    placed: Mutex<Vec<(usize, PlacedGroup<WireFrame>)>>,
    workers: usize,
    /// The instrumented vehicle (first vehicle; owns the packet log).
    v0: NodeId,
    /// Fast path: true when the fault plan schedules anything at all.
    faulted: bool,
    /// The run's root RNG (restart streams fork from it on demand).
    rng: Rng,
    /// Nested mode (multi-cluster scenarios): the two-level schedule and
    /// the cluster machinery. `None` runs the flat single-level barrier
    /// loop, byte-for-byte the pre-hierarchy engine.
    hierarchy: Option<HierarchicalSchedule>,
    /// Which cluster owns each node (nested mode only).
    cluster_of: HashMap<NodeId, usize>,
    /// Per-cluster radio runtimes (nested mode only).
    cluster_rts: Vec<Mutex<ClusterRt>>,
    /// Shards hosting each cluster, ascending (nested mode only).
    cluster_shards: Vec<Vec<usize>>,
}

impl Engine {
    fn build(setup: EngineSetup) -> Engine {
        let EngineSetup {
            cfg,
            vehicles,
            bs_ids,
            link_factory,
            schedule,
            hierarchy,
            clusters,
            partition,
            base_shard_id,
            workers,
        } = setup;
        assert!(!vehicles.is_empty() && !bs_ids.is_empty());
        let rng = Rng::new(cfg.seed);
        let beacons = BeaconSchedule::new(cfg.vifi.beacon_period, &rng);
        let v0 = vehicles[0];

        // Workload hosts: the instrumented vehicle alone by default,
        // every vehicle in fleet mode. The first vehicle keeps the
        // historical "driver" stream; fleet members fork per-vehicle
        // streams (same derivation as the pre-engine loop).
        let driver_rng = rng.fork_named("driver");
        let mut hosts: HashMap<NodeId, VehicleHost> = HashMap::new();
        if cfg.fleet_workloads.is_empty() {
            hosts.insert(
                v0,
                VehicleHost {
                    driver: Some(build_driver(&cfg.workload, SimTime::ZERO)),
                    rng: driver_rng,
                    anchor_switches: 0,
                    unroutable_down: 0,
                },
            );
        } else {
            for (i, &v) in vehicles.iter().enumerate() {
                let spec = &cfg.fleet_workloads[i % cfg.fleet_workloads.len()];
                hosts.insert(
                    v,
                    VehicleHost {
                        driver: Some(build_driver(spec, SimTime::ZERO)),
                        rng: if i == 0 {
                            driver_rng.fork(0)
                        } else {
                            driver_rng.fork(v.label())
                        },
                        anchor_switches: 0,
                        unroutable_down: 0,
                    },
                );
            }
        }

        let mut owner = HashMap::new();
        let mut shards = Vec::with_capacity(partition.lanes.len());
        for (s, lane_nodes) in partition.lanes.iter().enumerate() {
            let mut nodes = lane_nodes.clone();
            nodes.sort_by_key(|n| n.index());
            let mut cells = HashMap::new();
            for &n in &nodes {
                let prev = owner.insert(n, s);
                assert!(prev.is_none(), "node {n:?} assigned to two shards");
                let role = if bs_ids.contains(&n) {
                    Role::Bs
                } else {
                    Role::Vehicle
                };
                // Same per-endpoint stream derivation as the historical
                // assemble(): position-independent forks keyed by label.
                let ep_rng = rng.fork(
                    if role == Role::Vehicle {
                        0x5EED_0000
                    } else {
                        0x5EED_1000
                    } + n.label(),
                );
                cells.insert(
                    n,
                    NodeCell {
                        endpoint: Endpoint::new(n, role, cfg.vifi.clone(), bs_ids.clone(), ep_rng),
                        iface_busy: false,
                        pending_beacon: None,
                        wakeup_token: None,
                        host: hosts.remove(&n),
                        emit_seq: 0,
                        restarts: 0,
                        carried_evictions: 0,
                    },
                );
            }
            shards.push(Mutex::new(Shard {
                nodes,
                sched: Scheduler::with_shard(base_shard_id + s as u32),
                cells,
                link: link_factory(),
                tx_requests: Vec::new(),
                bp_sends: Vec::new(),
                x_msgs: Vec::new(),
                log_ops: Vec::new(),
                reports: Vec::new(),
                salvaged: 0,
                faults: FaultStats::default(),
                wall: Duration::ZERO,
            }));
        }
        assert!(
            hosts.is_empty(),
            "every workload vehicle must be assigned to a shard"
        );

        let coord = Coordinator {
            medium: SharedMediumService::new(cfg.mac, &rng.fork_named("mac")),
            backplane: Backplane::new(cfg.backplane),
            link: link_factory(),
            meta: HashMap::new(),
            log_ops: Vec::new(),
            serial_wall: Duration::ZERO,
            drop_seq: 0,
            fault_rng: rng.fork_named("fault-bp"),
            retries: Vec::new(),
            tally: FaultStats::default(),
        };
        // Nested-mode cluster machinery. The decomposition and schedule
        // are pure functions of the scenario, so the sequential run and
        // every sharded run build identical cluster runtimes — the
        // medium split is invisible to placement because clusters are
        // radio-disjoint and per-node backoff streams fork by label from
        // the same root as the flat medium.
        let mut cluster_of = HashMap::new();
        let mut cluster_rts = Vec::with_capacity(clusters.len());
        let mut cluster_shards = vec![Vec::new(); clusters.len()];
        if let Some(h) = &hierarchy {
            assert_eq!(
                h.clusters(),
                clusters.len(),
                "hierarchy and decomposition must agree"
            );
            for (c, members) in clusters.iter().enumerate() {
                for &n in members {
                    let prev = cluster_of.insert(n, c);
                    assert!(prev.is_none(), "node {n:?} in two clusters");
                }
                cluster_rts.push(Mutex::new(ClusterRt {
                    medium: SharedMediumService::new(cfg.mac, &rng.fork_named("mac"))
                        .with_handle_base((c as u64) << 48),
                    link: link_factory(),
                    meta: HashMap::new(),
                    log_ops: Vec::new(),
                }));
            }
            for (s, lane_nodes) in partition.lanes.iter().enumerate() {
                for n in lane_nodes {
                    let c = *cluster_of.get(n).expect("every node has a cluster");
                    let hosts: &mut Vec<usize> = &mut cluster_shards[c];
                    if hosts.last() != Some(&s) {
                        hosts.push(s);
                    }
                }
            }
        }
        let workers = workers.clamp(1, partition.lanes.len());
        let faulted = !cfg.faults.is_empty();
        Engine {
            cfg,
            vehicles,
            bs_ids,
            beacons,
            schedule,
            shards,
            owner,
            coord: Mutex::new(coord),
            staged: RwLock::new(Staged::default()),
            scratch: RwLock::new(BarrierScratch::default()),
            cursor: AtomicUsize::new(0),
            placed: Mutex::new(Vec::new()),
            workers,
            v0,
            faulted,
            rng,
            hierarchy,
            cluster_of,
            cluster_rts,
            cluster_shards,
        }
    }

    fn run(self) -> (RunOutcome, CoupledTiming) {
        if self.hierarchy.is_some() {
            return self.run_nested();
        }
        let horizon = SimTime::ZERO + self.cfg.duration;
        let boundaries = self.schedule.boundaries(horizon);
        // Drain floor for the final barrier: only frames whose airtime
        // ends within the horizon resolve (and get logged) — a frame
        // still in the air when the run ends leaves no record, matching
        // the per-event loop's behavior at the tail.
        let final_next = SimTime::from_micros(horizon.as_micros() + 1);
        self.seed_shards(horizon);

        if self.workers <= 1 {
            // Serial executor: identical phases, no thread handoff. The
            // per-shard walls measured here are what each shard would cost
            // on a core of its own — the parallel probe/place phases are
            // therefore timed in per-shard slices rotated by epoch index,
            // exactly the work each shard's core would absorb in a
            // threaded run with balanced assignment.
            for (bi, &b) in boundaries.iter().enumerate() {
                for shard in &self.shards {
                    let mut sh = shard.lock().expect("shard");
                    let t0 = Instant::now();
                    self.exec_epoch(&mut sh, b.min(horizon), false);
                    sh.wall += t0.elapsed();
                }
                let next = boundaries.get(bi + 1).map(|&n| n.min(horizon));
                self.barrier_collect(b);
                {
                    let scratch = self.scratch.read().expect("scratch");
                    if let Some(probes) = scratch.probes.as_ref() {
                        let (total, n) = (probes.len(), self.shards.len());
                        for j in 0..n {
                            let (lo, hi) = (j * total / n, (j + 1) * total / n);
                            if lo == hi {
                                continue;
                            }
                            // Rotate wall attribution by epoch so small
                            // batches don't pile onto shard 0's core.
                            let mut sh = self.shards[(j + bi) % n].lock().expect("shard");
                            let t0 = Instant::now();
                            self.eval_probes(&scratch, lo..hi, sh.link.as_ref());
                            sh.wall += t0.elapsed();
                        }
                    }
                }
                self.barrier_split(b);
                {
                    let scratch = self.scratch.read().expect("scratch");
                    for i in 0..scratch.jobs.len() {
                        let n = self.shards.len();
                        let mut sh = self.shards[(i + bi) % n].lock().expect("shard");
                        let t0 = Instant::now();
                        self.place_job(&scratch, i);
                        sh.wall += t0.elapsed();
                    }
                }
                self.barrier_merge_route(b, next.unwrap_or(final_next));
                for shard in &self.shards {
                    let mut sh = shard.lock().expect("shard");
                    let t0 = Instant::now();
                    self.resolution_phase(&mut sh);
                    sh.wall += t0.elapsed();
                }
                self.barrier_serial_post();
            }
            for shard in &self.shards {
                let mut sh = shard.lock().expect("shard");
                let t0 = Instant::now();
                self.exec_epoch(&mut sh, horizon, true);
                sh.wall += t0.elapsed();
            }
        } else {
            // Threaded executor: workers own interleaved shard subsets;
            // each barrier's leader runs the coordinator sections while
            // the rest wait — the conservative lock-step the schedule
            // prescribes.
            let barrier = EpochBarrier::new(self.workers);
            let engine = &self;
            let boundaries = &boundaries;
            std::thread::scope(|scope| {
                for w in 0..engine.workers {
                    let barrier = &barrier;
                    scope.spawn(move || {
                        let my_shards: Vec<usize> =
                            (w..engine.shards.len()).step_by(engine.workers).collect();
                        for (bi, &b) in boundaries.iter().enumerate() {
                            for &si in &my_shards {
                                let mut sh = engine.shards[si].lock().expect("shard");
                                let t0 = Instant::now();
                                engine.exec_epoch(&mut sh, b.min(horizon), false);
                                sh.wall += t0.elapsed();
                            }
                            let next = boundaries.get(bi + 1).map(|&n| n.min(horizon));
                            if barrier.wait() {
                                engine.barrier_collect(b);
                            }
                            barrier.wait();
                            // Parallel audibility probes, then parallel
                            // group placement — each worker drains the
                            // shared cursor with its own shard's link
                            // (quality_hint is pure and
                            // instance-independent, so any instance
                            // gives bit-identical answers).
                            {
                                let mut sh = engine.shards[my_shards[0]].lock().expect("shard");
                                let t0 = Instant::now();
                                engine.drain_probes(sh.link.as_ref());
                                sh.wall += t0.elapsed();
                            }
                            if barrier.wait() {
                                engine.barrier_split(b);
                            }
                            barrier.wait();
                            {
                                let mut sh = engine.shards[my_shards[0]].lock().expect("shard");
                                let t0 = Instant::now();
                                engine.drain_jobs();
                                sh.wall += t0.elapsed();
                            }
                            if barrier.wait() {
                                engine.barrier_merge_route(b, next.unwrap_or(final_next));
                            }
                            barrier.wait();
                            for &si in &my_shards {
                                let mut sh = engine.shards[si].lock().expect("shard");
                                let t0 = Instant::now();
                                engine.resolution_phase(&mut sh);
                                sh.wall += t0.elapsed();
                            }
                            if barrier.wait() {
                                engine.barrier_serial_post();
                            }
                            barrier.wait();
                        }
                        for &si in &my_shards {
                            let mut sh = engine.shards[si].lock().expect("shard");
                            let t0 = Instant::now();
                            engine.exec_epoch(&mut sh, horizon, true);
                            sh.wall += t0.elapsed();
                        }
                    });
                }
            });
        }

        self.assemble_outcome(horizon)
    }

    /// Seed every shard: beacons for every lane, then fault-plan
    /// restarts, then drivers — all in lane order. A restart fires at
    /// the end of each crash window: while the window is open the pure
    /// fault predicates keep the node inert, and the `FaultUp` event
    /// is the single stateful step (a fresh endpoint).
    fn seed_shards(&self, horizon: SimTime) {
        for shard in &self.shards {
            let mut sh = shard.lock().expect("shard");
            for i in 0..sh.nodes.len() {
                let n = sh.nodes[i];
                let at = self.beacons.next_after(n, SimTime::ZERO);
                sh.sched.at(at, (n, Ev::Beacon));
            }
            if self.faulted {
                for i in 0..sh.nodes.len() {
                    let n = sh.nodes[i];
                    for w in self.cfg.faults.crash_windows(n) {
                        if w.end < horizon {
                            sh.sched.at(w.end, (n, Ev::FaultUp));
                        }
                    }
                }
            }
            for i in 0..sh.nodes.len() {
                let n = sh.nodes[i];
                if sh.cells[&n].host.is_some() {
                    self.with_driver(&mut sh, n, SimTime::ZERO, |d, api| d.start(api));
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Nested executor (multi-cluster scenarios)
    // ------------------------------------------------------------------

    /// The nested-barrier run loop: each cluster walks its own fine
    /// schedule against its own radio runtime, and the whole fleet
    /// rendezvouses only at coarse boundaries, where the thin backplane
    /// coupling (wired hops, partitions, spikes) resolves in canonical
    /// order. Outcomes are a pure function of `(config, seed, hierarchy)`
    /// — identical at every shard and worker count — because every phase
    /// below runs at schedule-determined instants in schedule-determined
    /// order, exactly like the flat loop.
    fn run_nested(self) -> (RunOutcome, CoupledTiming) {
        let horizon = SimTime::ZERO + self.cfg.duration;
        let hierarchy = self.hierarchy.as_ref().expect("nested run");
        let bounds = hierarchy.boundaries(horizon);
        let final_next = SimTime::from_micros(horizon.as_micros() + 1);
        let cluster_bounds: Vec<Vec<SimTime>> = (0..hierarchy.clusters())
            .map(|c| hierarchy.cluster_boundaries(c, horizon))
            .collect();
        self.seed_shards(horizon);

        if self.workers <= 1 {
            // Serial nested executor: every shard executes to each union
            // boundary, then the due clusters' pipelines run in cluster
            // order, then (at coarse instants) the global rendezvous —
            // the same per-shard event interleaving the threaded
            // executor produces.
            for (i, &(t, mask, is_coarse)) in bounds.iter().enumerate() {
                let coarse = is_coarse || i + 1 == bounds.len();
                for shard in &self.shards {
                    let mut sh = shard.lock().expect("shard");
                    let t0 = Instant::now();
                    self.exec_epoch(&mut sh, t.min(horizon), false);
                    sh.wall += t0.elapsed();
                }
                for (c, cb) in cluster_bounds.iter().enumerate() {
                    if mask & (1 << c) != 0 {
                        self.cluster_pipeline(c, t, next_boundary(cb, t, horizon, final_next));
                    }
                }
                if coarse {
                    self.global_coarse(t);
                }
            }
        } else {
            self.run_nested_threaded(&bounds, &cluster_bounds, horizon, final_next);
        }

        for shard in &self.shards {
            let mut sh = shard.lock().expect("shard");
            let t0 = Instant::now();
            self.exec_epoch(&mut sh, horizon, true);
            sh.wall += t0.elapsed();
        }
        self.assemble_outcome(horizon)
    }

    /// The threaded nested executor. Clusters that share a shard are
    /// grouped (a shard's events must be executed by exactly one worker);
    /// groups are packed into `min(workers, groups)` supergroups, each
    /// with its own slice of the worker pool and its own cluster barrier
    /// in a [`NestedEpochBarrier`] — so a supergroup's fine boundaries
    /// never stall the others, and only coarse boundaries synchronize the
    /// whole pool.
    fn run_nested_threaded(
        &self,
        bounds: &[(SimTime, u64, bool)],
        cluster_bounds: &[Vec<SimTime>],
        horizon: SimTime,
        final_next: SimTime,
    ) {
        let nc = cluster_bounds.len();
        // Group clusters that share a shard (union-find over clusters).
        let mut parent: Vec<usize> = (0..nc).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let mut shard_cluster: HashMap<usize, usize> = HashMap::new();
        for (c, hosts) in self.cluster_shards.iter().enumerate() {
            for &s in hosts {
                match shard_cluster.get(&s) {
                    Some(&d) => {
                        let (a, b) = (find(&mut parent, c), find(&mut parent, d));
                        if a != b {
                            parent[a.max(b)] = a.min(b);
                        }
                    }
                    None => {
                        shard_cluster.insert(s, c);
                    }
                }
            }
        }
        // Groups in order of their smallest cluster.
        let mut group_of_root: HashMap<usize, usize> = HashMap::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for c in 0..nc {
            let r = find(&mut parent, c);
            let g = *group_of_root.entry(r).or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
            groups[g].push(c);
        }
        // Pack groups into supergroups (LPT by node count, deterministic
        // tie-breaks), then split the worker pool proportionally.
        let group_w: Vec<usize> = groups
            .iter()
            .map(|g| {
                g.iter()
                    .map(|&c| self.cluster_of.values().filter(|&&x| x == c).count())
                    .sum()
            })
            .collect();
        let nsg = self.workers.min(groups.len());
        let mut order: Vec<usize> = (0..groups.len()).collect();
        order.sort_by_key(|&g| (std::cmp::Reverse(group_w[g]), g));
        let mut sg_clusters: Vec<Vec<usize>> = vec![Vec::new(); nsg];
        let mut sg_load = vec![0usize; nsg];
        for g in order {
            let lightest = (0..nsg).min_by_key(|&k| (sg_load[k], k)).expect(">=1");
            sg_load[lightest] += group_w[g];
            sg_clusters[lightest].extend(groups[g].iter().copied());
        }
        for cs in &mut sg_clusters {
            cs.sort_unstable();
        }
        // Worker counts per supergroup: largest remainder on load, each
        // at least one, summing to the pool.
        let total: usize = sg_load.iter().sum::<usize>().max(1);
        let extra = self.workers - nsg;
        let mut counts = vec![1usize; nsg];
        let mut given = 0usize;
        let mut rem: Vec<(usize, usize)> = Vec::with_capacity(nsg);
        for k in 0..nsg {
            let exact = extra * sg_load[k];
            counts[k] += exact / total;
            given += exact / total;
            rem.push((exact % total, k));
        }
        rem.sort_by_key(|&(r, k)| (std::cmp::Reverse(r), k));
        for &(_, k) in rem.iter().take(extra - given) {
            counts[k] += 1;
        }
        // Shards of each supergroup: every hosting shard of its clusters,
        // plus empty shards round-robined across supergroups.
        let mut sg_of_shard: Vec<Option<usize>> = vec![None; self.shards.len()];
        for (k, cs) in sg_clusters.iter().enumerate() {
            for &c in cs {
                for &s in &self.cluster_shards[c] {
                    sg_of_shard[s] = Some(k);
                }
            }
        }
        let mut sg_shards: Vec<Vec<usize>> = vec![Vec::new(); nsg];
        let mut spare = 0usize;
        for (s, k) in sg_of_shard.iter().enumerate() {
            match k {
                Some(k) => sg_shards[*k].push(s),
                None => {
                    sg_shards[spare % nsg].push(s);
                    spare += 1;
                }
            }
        }
        let sg_mask: Vec<u64> = sg_clusters
            .iter()
            .map(|cs| cs.iter().fold(0u64, |m, &c| m | (1 << c)))
            .collect();

        let barrier = NestedEpochBarrier::new(&counts);
        let engine = &self;
        let counts = &counts;
        std::thread::scope(|scope| {
            for sg in 0..nsg {
                for k in 0..counts[sg] {
                    let barrier = &barrier;
                    let (sg_shards, sg_clusters, sg_mask) = (&sg_shards, &sg_clusters, &sg_mask);
                    scope.spawn(move || {
                        let my_shards: Vec<usize> = sg_shards[sg]
                            .iter()
                            .copied()
                            .skip(k)
                            .step_by(counts[sg])
                            .collect();
                        for (i, &(t, mask, is_coarse)) in bounds.iter().enumerate() {
                            let coarse = is_coarse || i + 1 == bounds.len();
                            if !coarse && mask & sg_mask[sg] == 0 {
                                // None of this supergroup's clusters has a
                                // boundary here: free-run past it. Event
                                // execution is chunk-invariant, so the
                                // skipped span is absorbed by the next
                                // participating boundary.
                                continue;
                            }
                            for &si in &my_shards {
                                let mut sh = engine.shards[si].lock().expect("shard");
                                let t0 = Instant::now();
                                engine.exec_epoch(&mut sh, t.min(horizon), false);
                                sh.wall += t0.elapsed();
                            }
                            if barrier.wait_cluster(sg) {
                                for &c in &sg_clusters[sg] {
                                    if mask & (1 << c) != 0 {
                                        engine.cluster_pipeline(
                                            c,
                                            t,
                                            next_boundary(
                                                &cluster_bounds[c],
                                                t,
                                                horizon,
                                                final_next,
                                            ),
                                        );
                                    }
                                }
                            }
                            barrier.wait_cluster(sg);
                            if coarse {
                                if barrier.wait_global() {
                                    engine.global_coarse(t);
                                }
                                barrier.wait_global();
                            }
                        }
                    });
                }
            }
        });
    }

    /// One cluster's fine barrier: collect the cluster's transmission
    /// requests from its hosting shards, place them on the cluster's own
    /// medium, and resolve the frames ending before the cluster's next
    /// boundary — the leader-serial analogue of the flat barrier's
    /// collect/split/place/merge/resolve phases, confined to one
    /// radio-disjoint cluster. Backplane sends and cross-lane messages
    /// stay buffered in the shards until the coarse rendezvous.
    fn cluster_pipeline(&self, c: usize, b: SimTime, next: SimTime) {
        let t0 = Instant::now();
        let mut rt = self.cluster_rts[c].lock().expect("cluster rt");

        // ---- collect this cluster's requests, hosting shards in order --
        let mut requests: Vec<TxRequest<WireFrame>> = Vec::new();
        for &si in &self.cluster_shards[c] {
            let mut sh = self.shards[si].lock().expect("shard");
            let (mine, rest): (Vec<_>, Vec<_>) = std::mem::take(&mut sh.tx_requests)
                .into_iter()
                .partition(|r| self.cluster_of[&r.frame.src] == c);
            sh.tx_requests = rest;
            requests.extend(mine);
        }
        requests.sort_by_key(|r| (r.t_req, r.frame.src.label()));

        // ---- aux snapshots ----
        // The instrumented vehicle's source data frames are transmitted
        // by v0 itself or by a BS in radio contact with it, so they only
        // ever appear in v0's own cluster — the lock below never races
        // another cluster's pipeline.
        let metas: Vec<FrameMeta> = requests
            .iter()
            .map(|r| {
                let aux_set = match DataView::of(&r.frame.payload) {
                    Some(d)
                        if d.relayed_by().is_none()
                            && self.flow_vehicle(d.flow_src(), d.flow_dst()) == self.v0 =>
                    {
                        let mut sh = self.shards[self.owner[&self.v0]].lock().expect("shard");
                        let cell = sh.cells.get_mut(&self.v0).expect("v0 cell");
                        Some(cell.endpoint.current_aux(b))
                    }
                    _ => None,
                };
                FrameMeta { aux_set }
            })
            .collect();
        let senders: Vec<NodeId> = requests.iter().map(|r| r.frame.src).collect();

        // ---- place on the cluster's own medium, drain resolvable ----
        let ClusterRt {
            medium,
            link,
            meta,
            log_ops,
        } = &mut *rt;
        let groups = medium.split_batch(requests, b, link.as_ref());
        let placed: Vec<PlacedGroup<WireFrame>> = groups.into_iter().map(|g| g.place(b)).collect();
        let placements = medium.merge_placed(placed, b, link.as_ref());
        for (p, m) in placements.iter().zip(metas) {
            meta.insert(p.handle, m);
        }
        let resolvable = medium.drain_resolvable(next);

        // ---- per hosting shard: TxDone + reception sampling ----
        // Each receiver samples on its owner shard's link instance, as in
        // flat mode; restricting to the cluster's own nodes is pure
        // stream hygiene (cross-cluster pairs have zero quality and never
        // consume link randomness).
        let sense = self.cfg.mac.sense_threshold;
        let mut by_handle: HashMap<TxHandle, Vec<NodeId>> = HashMap::new();
        for &si in &self.cluster_shards[c] {
            let mut sh = self.shards[si].lock().expect("shard");
            for (src, p) in senders.iter().zip(&placements) {
                if sh.cells.contains_key(src) {
                    sh.sched.at(p.end, (*src, Ev::TxDone));
                }
            }
            for tx in &resolvable {
                for idx in 0..sh.nodes.len() {
                    let rx = sh.nodes[idx];
                    if self.cluster_of[&rx] != c {
                        continue;
                    }
                    if self.faulted && self.cfg.faults.bs_down(rx, tx.end) {
                        sh.faults.rx_dropped_down += 1;
                        continue;
                    }
                    if kernel::sample_reception(sh.link.as_mut(), tx, rx, sense).is_some() {
                        sh.sched.at(tx.end, (rx, Ev::Rx(tx.frame.payload.clone())));
                        by_handle.entry(tx.handle).or_default().push(rx);
                    }
                }
            }
        }

        // ---- per-frame instrumentation, canonical order ----
        for (k, tx) in resolvable.iter().enumerate() {
            let mut rx_ids = by_handle.remove(&tx.handle).unwrap_or_default();
            rx_ids.sort_by_key(|n| n.index());
            let m = meta.remove(&tx.handle);
            self.emit_frame_ops(log_ops, tx, &rx_ids, m, SEQ_RESOLUTION + k as u64);
        }
        drop(rt);

        // Stall model: every hosting shard waits for its cluster's
        // pipeline, so the elapsed time lands on each of their walls (the
        // fleet-wide serial wall only accrues at coarse boundaries).
        let elapsed = t0.elapsed();
        for &si in &self.cluster_shards[c] {
            let mut sh = self.shards[si].lock().expect("shard");
            sh.wall += elapsed;
        }
    }

    /// The coarse rendezvous of a nested run: drain every shard's
    /// backplane sends and cross-lane messages (shard order) and resolve
    /// them through the same canonical routing tail the flat engine runs
    /// at every epoch. This is the only phase where clusters exchange
    /// effects — over the wired backplane, never over the air.
    fn global_coarse(&self, b: SimTime) {
        let t0 = Instant::now();
        let mut coord = self.coord.lock().expect("coordinator");
        let mut bp: Vec<BpSend> = Vec::new();
        let mut xs: Vec<XMsg> = Vec::new();
        for shard in &self.shards {
            let mut sh = shard.lock().expect("shard");
            bp.append(&mut sh.bp_sends);
            xs.append(&mut sh.x_msgs);
        }
        self.route_global(&mut coord, bp, xs, b);
        coord.serial_wall += t0.elapsed();
    }

    /// Dispatch one shard's events up to `limit` — exclusive between
    /// epochs, inclusive on the final pass (matching the historical
    /// `<= horizon` loop).
    fn exec_epoch(&self, sh: &mut Shard, limit: SimTime, inclusive: bool) {
        while let Some(t) = sh.sched.peek_time() {
            if (inclusive && t > limit) || (!inclusive && t >= limit) {
                break;
            }
            let (now, (lane, ev)) = sh.sched.step().expect("peeked event vanished");
            self.dispatch(sh, lane, ev, now);
        }
    }

    // ------------------------------------------------------------------
    // Barrier phases
    // ------------------------------------------------------------------

    /// Leader phase 1: collect every shard's outbox, sort the epoch's
    /// transmission batch into canonical order, snapshot frame metas, and
    /// plan the audibility probes the batch partition needs. Publishes
    /// the batch in the scratch area and resets the work cursor — legal
    /// because every other worker is parked at the following wait.
    fn barrier_collect(&self, b: SimTime) {
        let t0 = Instant::now();
        let mut coord = self.coord.lock().expect("coordinator");

        // ---- collect outboxes in shard order ----
        let mut requests: Vec<TxRequest<WireFrame>> = Vec::new();
        let mut bp: Vec<BpSend> = Vec::new();
        let mut xs: Vec<XMsg> = Vec::new();
        for shard in &self.shards {
            let mut sh = shard.lock().expect("shard");
            requests.append(&mut sh.tx_requests);
            bp.append(&mut sh.bp_sends);
            xs.append(&mut sh.x_msgs);
            let mut ops = std::mem::take(&mut sh.log_ops);
            coord.log_ops.append(&mut ops);
        }

        // ---- canonical batch order + aux snapshots ----
        requests.sort_by_key(|r| (r.t_req, r.frame.src.label()));
        // Aux snapshots for the instrumented vehicle's source data frames
        // (cross-lane read — legal here: every shard is parked).
        let metas: Vec<FrameMeta> = requests
            .iter()
            .map(|r| {
                let aux_set = match DataView::of(&r.frame.payload) {
                    Some(d)
                        if d.relayed_by().is_none()
                            && self.flow_vehicle(d.flow_src(), d.flow_dst()) == self.v0 =>
                    {
                        let mut sh = self.shards[self.owner[&self.v0]].lock().expect("shard");
                        let cell = sh.cells.get_mut(&self.v0).expect("v0 cell");
                        Some(cell.endpoint.current_aux(b))
                    }
                    _ => None,
                };
                FrameMeta { aux_set }
            })
            .collect();
        let senders: Vec<NodeId> = requests.iter().map(|r| r.frame.src).collect();
        let probes = (!requests.is_empty()).then(|| coord.medium.partition_probes(&requests, b));
        let audible = probes
            .as_ref()
            .map(|p| (0..p.len()).map(|_| AtomicBool::new(false)).collect())
            .unwrap_or_default();
        *self.scratch.write().expect("scratch") = BarrierScratch {
            requests,
            metas,
            senders,
            bp,
            xs,
            at: b,
            probes,
            audible,
            jobs: Vec::new(),
        };
        self.cursor.store(0, Ordering::SeqCst);
        coord.serial_wall += t0.elapsed();
    }

    /// Parallel phase 2 helper: evaluate one range of audibility probes
    /// against `link` (any instance — `quality_hint` is pure and
    /// instance-independent) and record the audible ones.
    fn eval_probes(&self, scratch: &BarrierScratch, range: Range<usize>, link: &dyn LinkModel) {
        let probes = scratch.probes.as_ref().expect("probe plan published");
        let sense = self.cfg.mac.sense_threshold;
        for k in range {
            if probes.eval(k, scratch.at, link, sense) {
                scratch.audible[k].store(true, Ordering::SeqCst);
            }
        }
    }

    /// Parallel phase 2, threaded form: claim probe chunks through the
    /// shared cursor until the plan is exhausted.
    fn drain_probes(&self, link: &dyn LinkModel) {
        const CHUNK: usize = 8;
        let scratch = self.scratch.read().expect("scratch");
        let Some(probes) = scratch.probes.as_ref() else {
            return;
        };
        loop {
            let lo = self.cursor.fetch_add(CHUNK, Ordering::SeqCst);
            if lo >= probes.len() {
                break;
            }
            self.eval_probes(&scratch, lo..(lo + CHUNK).min(probes.len()), link);
        }
    }

    /// Leader phase 3: union the probe answers into the batch partition
    /// and split the batch into placement jobs. Resets the cursor for the
    /// place phase (workers are parked at the following wait).
    fn barrier_split(&self, b: SimTime) {
        let t0 = Instant::now();
        let mut coord = self.coord.lock().expect("coordinator");
        let mut scratch = self.scratch.write().expect("scratch");
        let requests = std::mem::take(&mut scratch.requests);
        if let Some(probes) = scratch.probes.take() {
            let audible: Vec<bool> = scratch
                .audible
                .iter()
                .map(|a| a.load(Ordering::SeqCst))
                .collect();
            let groups = coord
                .medium
                .split_batch_resolved(requests, b, &probes, &audible);
            scratch.jobs = groups.into_iter().map(|g| Mutex::new(Some(g))).collect();
        }
        self.cursor.store(0, Ordering::SeqCst);
        coord.serial_wall += t0.elapsed();
    }

    /// Parallel phase 4 helper: place one claimed job (pure window
    /// arithmetic — the probes already answered every carrier-sense
    /// question, so no link model is involved).
    fn place_job(&self, scratch: &BarrierScratch, i: usize) {
        let job = scratch.jobs[i]
            .lock()
            .expect("job")
            .take()
            .expect("each job claimed exactly once");
        let placed = job.place(scratch.at);
        self.placed.lock().expect("placed").push((i, placed));
    }

    /// Parallel phase 4, threaded form: claim placement jobs through the
    /// shared cursor until none remain.
    fn drain_jobs(&self) {
        let scratch = self.scratch.read().expect("scratch");
        loop {
            let i = self.cursor.fetch_add(1, Ordering::SeqCst);
            if i >= scratch.jobs.len() {
                break;
            }
            self.place_job(&scratch, i);
        }
    }

    /// Leader phase 5: merge the placed groups back into the medium in
    /// canonical order, drain resolvable frames, stage the resolution
    /// inputs, resolve the backplane batch, and route cross-lane
    /// messages — the serial tail of the old one-piece barrier.
    fn barrier_merge_route(&self, b: SimTime, next: SimTime) {
        let t0 = Instant::now();
        let mut coord = self.coord.lock().expect("coordinator");
        let mut scratch = self.scratch.write().expect("scratch");
        let metas = std::mem::take(&mut scratch.metas);
        let senders = std::mem::take(&mut scratch.senders);
        let bp = std::mem::take(&mut scratch.bp);
        let xs = std::mem::take(&mut scratch.xs);
        scratch.jobs.clear();
        drop(scratch);
        let mut placed_groups = std::mem::take(&mut *self.placed.lock().expect("placed"));
        placed_groups.sort_by_key(|(i, _)| *i);
        let placements = {
            let Coordinator { medium, link, .. } = &mut *coord;
            medium.merge_placed(
                placed_groups.into_iter().map(|(_, g)| g).collect(),
                b,
                link.as_ref(),
            )
        };
        for (p, m) in placements.iter().zip(metas) {
            coord.meta.insert(p.handle, m);
        }
        let resolvable = coord.medium.drain_resolvable(next);
        *self.staged.write().expect("staged") = Staged {
            placements: senders
                .into_iter()
                .zip(placements.iter().map(|p| p.end))
                .collect(),
            resolvable,
        };

        self.route_global(&mut coord, bp, xs, b);
        coord.serial_wall += t0.elapsed();
    }

    /// The global routing tail of a barrier: resolve the backplane batch
    /// in canonical sender order, apply backplane fault filtering, and
    /// route cross-lane messages. In flat mode this runs at every epoch;
    /// in nested mode only at coarse boundaries — the "thin backplane
    /// coupling" the hierarchy rendezvouses for.
    fn route_global(
        &self,
        coord: &mut Coordinator,
        mut bp: Vec<BpSend>,
        mut xs: Vec<XMsg>,
        b: SimTime,
    ) {
        // ---- backplane batch, canonical sender order per instant ----
        // Fault retries that came due during this epoch rejoin the batch
        // (their retry instant is the sort key, so ordering stays
        // canonical across partitions).
        if !coord.retries.is_empty() {
            let (due, later): (Vec<BpSend>, Vec<BpSend>) = std::mem::take(&mut coord.retries)
                .into_iter()
                .partition(|s| s.t <= b);
            coord.retries = later;
            bp.extend(due);
        }
        bp.sort_by_key(|s| (s.t, s.from.label(), s.lane_seq));
        let mut rest = bp;
        while !rest.is_empty() {
            let t = rest[0].t;
            let split = rest.iter().position(|s| s.t != t).unwrap_or(rest.len());
            let tail = rest.split_off(split);
            let batch = rest;
            rest = tail;
            // Fault filtering before capacity: a partition severs the
            // path outright; a latency/loss spike eats each message with
            // probability `loss` and delays the survivors. Losers go to
            // the bounded-retry machinery.
            let mut sends: Vec<(BpSend, Option<vifi_sim::SimDuration>)> =
                Vec::with_capacity(batch.len());
            if self.faulted {
                let spike = self.cfg.faults.spike_at(t);
                for send in batch {
                    if self.cfg.faults.partitioned(send.from, send.to, t) {
                        self.bp_fault_failure(coord, send, t, true);
                    } else if let Some(sp) = spike {
                        if coord.fault_rng.chance(sp.loss) {
                            self.bp_fault_failure(coord, send, t, false);
                        } else {
                            sends.push((send, Some(sp.extra_latency)));
                        }
                    } else {
                        sends.push((send, None));
                    }
                }
            } else {
                sends.extend(batch.into_iter().map(|s| (s, None)));
            }
            let sizes: Vec<(NodeId, NodeId, u32)> =
                sends.iter().map(|(s, _)| (s.from, s.to, s.bytes)).collect();
            let slots = coord.backplane.send_batch(&sizes, t);
            for ((send, extra), slot) in sends.into_iter().zip(slots) {
                match slot {
                    Some(arrival) => {
                        let arrival = match extra {
                            Some(d) => arrival + d,
                            None => arrival,
                        };
                        // Never earlier than the barrier that routes it
                        // (only reachable when the backplane latency is
                        // shorter than the epoch that buffered the send).
                        let at = arrival.max(b);
                        let mut sh = self.shards[self.owner[&send.to]].lock().expect("shard");
                        sh.sched.at(
                            at,
                            (
                                send.to,
                                Ev::BackplaneArrive {
                                    from: send.from,
                                    msg: send.msg,
                                },
                            ),
                        );
                    }
                    None => self.log_bp_drop(coord, &send),
                }
            }
        }

        // ---- cross-lane messages, canonical order ----
        xs.sort_by_key(|x| x.key());
        for x in xs {
            match x {
                XMsg::AnchorDown {
                    anchor,
                    vehicle,
                    payload,
                    ..
                } => {
                    let mut sh = self.shards[self.owner[&anchor]].lock().expect("shard");
                    sh.sched
                        .at(b, (anchor, Ev::AnchorDown { vehicle, payload }));
                }
                XMsg::WiredUp {
                    vehicle,
                    payload,
                    radio_exit,
                    at,
                    ..
                } => {
                    if self.faulted && self.cfg.faults.wired_out(vehicle, at) {
                        // Upstream wired outage: the anchor delivered the
                        // packet off the air, but the wired path toward
                        // this vehicle's Internet peer is out.
                        coord.tally.wired_drops += 1;
                        continue;
                    }
                    let deliver = (at + self.cfg.wired_delay).max(b);
                    let mut sh = self.shards[self.owner[&vehicle]].lock().expect("shard");
                    sh.sched.at(
                        deliver,
                        (
                            vehicle,
                            Ev::WiredUpArrive {
                                payload,
                                radio_exit,
                            },
                        ),
                    );
                }
            }
        }
    }

    /// Parallel phase: each shard schedules TxDone for its own senders
    /// and resolves its own receivers of every ending frame through the
    /// pure MAC kernel and its own link-model instance.
    fn resolution_phase(&self, sh: &mut Shard) {
        let staged = self.staged.read().expect("staged");
        for &(src, end) in &staged.placements {
            if sh.cells.contains_key(&src) {
                sh.sched.at(end, (src, Ev::TxDone));
            }
        }
        let sense = self.cfg.mac.sense_threshold;
        for tx in &staged.resolvable {
            for idx in 0..sh.nodes.len() {
                let rx = sh.nodes[idx];
                if self.faulted && self.cfg.faults.bs_down(rx, tx.end) {
                    // A crashed node's radio hears nothing; skipping the
                    // sample is a pure decision of `(rx, end)`, so every
                    // partition consumes its per-link streams identically.
                    sh.faults.rx_dropped_down += 1;
                    continue;
                }
                if kernel::sample_reception(sh.link.as_mut(), tx, rx, sense).is_some() {
                    sh.sched.at(tx.end, (rx, Ev::Rx(tx.frame.payload.clone())));
                    sh.reports.push((tx.handle, rx));
                }
            }
        }
    }

    /// Serial post-resolution phase: merge reception reports and emit the
    /// instrumentation ops of every resolved frame.
    fn barrier_serial_post(&self) {
        let t0 = Instant::now();
        let mut coord = self.coord.lock().expect("coordinator");
        let mut by_handle: HashMap<TxHandle, Vec<NodeId>> = HashMap::new();
        for shard in &self.shards {
            let mut sh = shard.lock().expect("shard");
            for (h, rx) in sh.reports.drain(..) {
                by_handle.entry(h).or_default().push(rx);
            }
        }
        let staged = std::mem::take(&mut *self.staged.write().expect("staged"));
        for (k, tx) in staged.resolvable.iter().enumerate() {
            let mut rx_ids = by_handle.remove(&tx.handle).unwrap_or_default();
            rx_ids.sort_by_key(|n| n.index());
            let meta = coord.meta.remove(&tx.handle);
            self.emit_frame_ops(
                &mut coord.log_ops,
                tx,
                &rx_ids,
                meta,
                SEQ_RESOLUTION + k as u64,
            );
        }
        coord.serial_wall += t0.elapsed();
    }

    /// The per-frame instrumentation the per-event loop did in
    /// `on_tx_done`, emitted as canonical log ops at `(end, tx lane)`.
    /// The destination vector is the coordinator's op log in flat mode
    /// and the owning cluster's in nested mode.
    fn emit_frame_ops(
        &self,
        ops: &mut Vec<LogOp>,
        tx: &ResolvableTx<WireFrame>,
        rx_ids: &[NodeId],
        meta: Option<FrameMeta>,
        seq: u64,
    ) {
        let lane = tx.frame.src.label();
        let at = tx.end;
        // The frame stays packed: the fixed-offset views read the handful
        // of header fields instrumentation needs without decoding the
        // payload (beacons and other vehicles' data fall through).
        if let Some(d) = DataView::of(&tx.frame.payload) {
            if self.flow_vehicle(d.flow_src(), d.flow_dst()) != self.v0 {
                return;
            }
            let dir = self.dir_of_src(d.flow_src());
            ops.push(LogOp {
                at,
                lane,
                seq,
                op: LogOpKind::WirelessTx { dir },
            });
            let op = if let Some(relayer) = d.relayed_by() {
                LogOpKind::Relay {
                    id: d.id(),
                    by: relayer,
                    via_backplane: false,
                    reached: rx_ids.contains(&d.flow_dst()),
                }
            } else {
                let aux_set = meta.and_then(|m| m.aux_set).unwrap_or_default();
                let aux_heard: Vec<NodeId> = rx_ids
                    .iter()
                    .copied()
                    .filter(|n| aux_set.contains(n))
                    .collect();
                LogOpKind::SourceTx {
                    id: d.id(),
                    dir,
                    dst_heard: rx_ids.contains(&d.flow_dst()),
                    aux_set,
                    aux_heard,
                }
            };
            ops.push(LogOp { at, lane, seq, op });
        } else if let Some(a) = AckView::of(&tx.frame.payload) {
            let id = a.id();
            let veh = if self.is_bs(id.origin) {
                a.from()
            } else {
                id.origin
            };
            if veh == self.v0 {
                ops.push(LogOp {
                    at,
                    lane,
                    seq,
                    op: LogOpKind::AckHeard {
                        id,
                        heard_by: rx_ids.to_vec(),
                        dir: self.dir_of_src(id.origin),
                    },
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // Dispatch (the per-event loop's logic; emissions go via outboxes)
    // ------------------------------------------------------------------

    fn dispatch(&self, sh: &mut Shard, lane: NodeId, ev: Ev, now: SimTime) {
        // Crashed nodes are inert: a pure predicate of `(lane, now)`, so
        // every partition gates identically without shared state.
        let down = self.faulted && self.cfg.faults.bs_down(lane, now);
        match ev {
            Ev::Beacon => self.on_beacon_due(sh, lane, now),
            Ev::TxDone => {
                let cell = sh.cells.get_mut(&lane).expect("cell");
                cell.iface_busy = false;
                if down {
                    // A frame already in the air when the node crashed
                    // finishes airing, but nothing new starts.
                    cell.pending_beacon = None;
                    return;
                }
                if let Some((payload, bytes)) = cell.pending_beacon.take() {
                    self.start_tx(sh, lane, payload, bytes, now);
                }
                self.pump(sh, lane, now);
            }
            Ev::Rx(frame) => {
                // Decode at the receiver — the one place the typed payload
                // is needed; everything between tx and rx moved `Bytes`.
                let payload: VifiPayload = frame
                    .decode()
                    .expect("wire codec round-trips engine frames");
                let acts = sh
                    .cells
                    .get_mut(&lane)
                    .expect("cell")
                    .endpoint
                    .on_frame(&payload, now);
                self.handle_actions(sh, lane, acts, now);
                self.pump(sh, lane, now);
            }
            Ev::Wakeup => {
                let cell = sh.cells.get_mut(&lane).expect("cell");
                cell.wakeup_token = None;
                if down {
                    return;
                }
                let acts = cell.endpoint.on_wakeup(now);
                self.handle_actions(sh, lane, acts, now);
                self.pump(sh, lane, now);
            }
            Ev::FaultUp => {
                // The crash window just closed: the node reboots with a
                // fresh endpoint (volatile protocol state is gone) on a
                // restart-specific RNG stream.
                let role = if self.is_bs(lane) {
                    Role::Bs
                } else {
                    Role::Vehicle
                };
                let cell = sh.cells.get_mut(&lane).expect("cell");
                cell.carried_evictions += cell.endpoint.blacklist_evictions();
                cell.restarts += 1;
                let ep_rng = self
                    .rng
                    .fork(0x5EED_2000 + lane.label())
                    .fork(cell.restarts);
                cell.endpoint = Endpoint::new(
                    lane,
                    role,
                    self.cfg.vifi.clone(),
                    self.bs_ids.clone(),
                    ep_rng,
                );
                cell.iface_busy = false;
                cell.pending_beacon = None;
                if let Some(tok) = cell.wakeup_token.take() {
                    sh.sched.cancel(tok);
                }
                sh.faults.bs_restarts += 1;
                self.pump(sh, lane, now);
            }
            Ev::BackplaneArrive { from, msg } => {
                if down {
                    sh.faults.backplane_dropped_down += 1;
                    return;
                }
                if let BackplaneMsg::RelayData(d) = &msg {
                    // An upstream relay reaching the anchor's process
                    // counts as having reached the destination.
                    if self.flow_vehicle(d.flow_src, d.flow_dst) == self.v0 {
                        self.log_op(
                            sh,
                            lane,
                            now,
                            LogOpKind::Relay {
                                id: d.id,
                                by: from,
                                via_backplane: true,
                                reached: true,
                            },
                        );
                    }
                }
                if let BackplaneMsg::SalvageData { packets, .. } = &msg {
                    sh.salvaged += packets.len() as u64;
                }
                let acts = match sh.cells.get_mut(&lane) {
                    Some(cell) => cell.endpoint.on_backplane(from, &msg, now),
                    None => Vec::new(),
                };
                self.handle_actions(sh, lane, acts, now);
                self.pump(sh, lane, now);
            }
            Ev::WiredDownArrive { payload } => {
                // Lane is the vehicle; its current anchor gets the payload
                // via the barrier (even when the anchor shares this shard —
                // the rule must not depend on the partition).
                let lane_seq = self.next_emit_seq(sh, lane);
                let cell = sh.cells.get_mut(&lane).expect("cell");
                match cell.endpoint.anchor() {
                    Some(a) => sh.x_msgs.push(XMsg::AnchorDown {
                        anchor: a,
                        vehicle: lane,
                        payload,
                        lane_seq,
                    }),
                    None => {
                        if let Some(host) = cell.host.as_mut() {
                            host.unroutable_down += 1;
                        }
                    }
                }
            }
            Ev::AnchorDown { vehicle, payload } => {
                if down {
                    // Downstream payload handed to an anchor that crashed:
                    // lost, like a packet inside a dead basestation.
                    sh.faults.wired_drops += 1;
                    return;
                }
                sh.cells.get_mut(&lane).expect("cell").endpoint.send_app(
                    payload,
                    Some(vehicle),
                    now,
                );
                self.pump(sh, lane, now);
            }
            Ev::WiredUpArrive {
                payload,
                radio_exit,
            } => {
                self.with_driver(sh, lane, now, |d, api| {
                    d.on_internet_rx(&payload, radio_exit, api)
                });
            }
            Ev::AppTick { chan } => {
                self.with_driver(sh, lane, now, |d, api| d.on_tick(chan, api));
            }
        }
    }

    fn on_beacon_due(&self, sh: &mut Shard, lane: NodeId, now: SimTime) {
        if self.faulted && self.cfg.faults.beacon_suppressed(lane, now) {
            // Crashed or suppressed: no beacon airs and the endpoint's
            // beacon-side state is untouched, but the beacon clock keeps
            // ticking so the node resumes on schedule.
            sh.faults.beacons_suppressed += 1;
            let next = self.beacons.next_after(lane, now);
            sh.sched.at(next, (lane, Ev::Beacon));
            return;
        }
        let (payload, bytes, acts) = sh
            .cells
            .get_mut(&lane)
            .expect("cell")
            .endpoint
            .make_beacon(now);
        self.handle_actions(sh, lane, acts, now);
        if lane == self.v0 {
            if let VifiPayload::Beacon(bc) = &payload {
                if let Some(v) = &bc.vehicle {
                    // A1 counts auxiliaries while connected.
                    if v.anchor.is_some() {
                        let size = v.aux.len();
                        self.log_op(
                            sh,
                            lane,
                            now,
                            LogOpKind::AuxSample {
                                sec: now.second_bin(),
                                size,
                            },
                        );
                    }
                }
            }
        }
        if sh.cells[&lane].iface_busy {
            // Replace any stale pending beacon with the fresh one.
            sh.cells.get_mut(&lane).expect("cell").pending_beacon = Some((payload, bytes));
        } else {
            self.start_tx(sh, lane, payload, bytes, now);
        }
        let next = self.beacons.next_after(lane, now);
        sh.sched.at(next, (lane, Ev::Beacon));
        self.pump(sh, lane, now);
    }

    /// Queue a transmission request: the interface goes busy now; the
    /// frame airs from the next epoch edge (see the module docs).
    fn start_tx(
        &self,
        sh: &mut Shard,
        lane: NodeId,
        payload: VifiPayload,
        bytes: u32,
        now: SimTime,
    ) {
        sh.cells.get_mut(&lane).expect("cell").iface_busy = true;
        // Encode once at the transmitter; every hop after this — barrier
        // collect, placement, fan-out to receivers — clones an `Arc`ed
        // byte buffer instead of the owned payload.
        sh.tx_requests.push(TxRequest {
            frame: Frame::new(lane, bytes, WireFrame::encode(lane, bytes, &payload)),
            t_req: now,
        });
    }

    fn pump(&self, sh: &mut Shard, lane: NodeId, now: SimTime) {
        // Wakeup timer maintenance.
        let next = sh.cells[&lane].endpoint.next_wakeup();
        if let Some(tok) = sh.cells.get_mut(&lane).expect("cell").wakeup_token.take() {
            sh.sched.cancel(tok);
        }
        if let Some(at) = next {
            let at = at.max(now);
            let tok = sh.sched.at(at, (lane, Ev::Wakeup));
            sh.cells.get_mut(&lane).expect("cell").wakeup_token = Some(tok);
        }
        // Interface.
        if !sh.cells[&lane].iface_busy {
            let pulled = {
                let cell = sh.cells.get_mut(&lane).expect("cell");
                if cell.endpoint.has_tx() {
                    cell.endpoint.pull_frame(now)
                } else {
                    None
                }
            };
            if let Some((payload, bytes)) = pulled {
                self.start_tx(sh, lane, payload, bytes, now);
            }
        }
    }

    fn handle_actions(&self, sh: &mut Shard, lane: NodeId, acts: Vec<Action>, now: SimTime) {
        for act in acts {
            match act {
                Action::Deliver { id, app, dir } => self.on_deliver(sh, lane, id, app, dir, now),
                Action::Backplane { to, msg } => {
                    let bytes = msg.wire_bytes();
                    if let BackplaneMsg::RelayData(d) = &msg {
                        if self.flow_vehicle(d.flow_src, d.flow_dst) == self.v0 {
                            self.log_op(sh, lane, now, LogOpKind::BackplaneTx);
                        }
                    }
                    let lane_seq = self.next_emit_seq(sh, lane);
                    sh.bp_sends.push(BpSend {
                        t: now,
                        from: lane,
                        to,
                        bytes,
                        msg,
                        lane_seq,
                        attempt: 0,
                    });
                }
                Action::Stat(ev) => self.on_stat(sh, lane, ev, now),
            }
        }
    }

    fn on_deliver(
        &self,
        sh: &mut Shard,
        lane: NodeId,
        id: PacketId,
        app: Bytes,
        dir: Direction,
        now: SimTime,
    ) {
        match dir {
            Direction::Downstream => {
                if lane == self.v0 {
                    self.log_op(sh, lane, now, LogOpKind::Delivered { id, dir });
                }
                self.with_driver(sh, lane, now, |d, api| d.on_vehicle_rx(&app, api));
            }
            Direction::Upstream => {
                // At the anchor: forward over the wired hop toward the
                // originating vehicle's Internet peer.
                if id.origin == self.v0 {
                    self.log_op(sh, lane, now, LogOpKind::Delivered { id, dir });
                }
                let lane_seq = self.next_emit_seq(sh, lane);
                sh.x_msgs.push(XMsg::WiredUp {
                    vehicle: id.origin,
                    from: lane,
                    payload: app,
                    radio_exit: now,
                    at: now,
                    lane_seq,
                });
            }
        }
    }

    fn on_stat(&self, sh: &mut Shard, lane: NodeId, ev: StatEvent, now: SimTime) {
        match ev {
            StatEvent::RelayDecision {
                id,
                dir: _,
                prob,
                relayed,
            } => {
                // Attaches only to packets already in the log, i.e. the
                // instrumented vehicle's flows.
                self.log_op(
                    sh,
                    lane,
                    now,
                    LogOpKind::Decision {
                        id,
                        aux: lane,
                        prob,
                        relayed,
                    },
                );
            }
            StatEvent::AnchorSwitch { .. } => {
                if let Some(host) = sh.cells.get_mut(&lane).and_then(|c| c.host.as_mut()) {
                    host.anchor_switches += 1;
                }
            }
            StatEvent::Salvaged { .. } => {
                // Counted at BackplaneArrive (covers the transfer itself).
            }
            StatEvent::RelaySuppressed { .. } | StatEvent::SourceDrop { .. } => {}
        }
    }

    fn with_driver<F>(&self, sh: &mut Shard, lane: NodeId, now: SimTime, f: F)
    where
        F: FnOnce(&mut dyn Driver, &mut HostApi),
    {
        // Vehicles without a workload driver (background fleet members in
        // non-fleet runs) simply have no host.
        let Some(host) = sh.cells.get_mut(&lane).and_then(|c| c.host.as_mut()) else {
            return;
        };
        let mut driver = host.driver.take().expect("driver present");
        let mut api = HostApi {
            now,
            rng: &mut host.rng,
            cmds: Vec::new(),
        };
        f(driver.as_mut(), &mut api);
        let cmds = api.cmds;
        host.driver = Some(driver);
        for cmd in cmds {
            match cmd {
                HostCmd::SendUpstream(bytes) => {
                    sh.cells
                        .get_mut(&lane)
                        .expect("cell")
                        .endpoint
                        .send_app(bytes, None, now);
                    self.pump(sh, lane, now);
                }
                HostCmd::SendDownstream(bytes) => {
                    if self.faulted && self.cfg.faults.wired_out(lane, now) {
                        // Wired outage toward this vehicle: the Internet
                        // side's packet never reaches the wired edge.
                        sh.faults.wired_drops += 1;
                        continue;
                    }
                    // Lane-local wired hop: the payload reaches this
                    // vehicle's wired side after the configured delay.
                    sh.sched.at(
                        now + self.cfg.wired_delay,
                        (lane, Ev::WiredDownArrive { payload: bytes }),
                    );
                }
                HostCmd::ScheduleTick { chan, at } => {
                    sh.sched.at(at.max(now), (lane, Ev::AppTick { chan }));
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    /// A backplane message lost to a partition or spike: schedule a retry
    /// if the bounded-retry budget allows, else drop it for good.
    fn bp_fault_failure(&self, coord: &mut Coordinator, send: BpSend, t: SimTime, partition: bool) {
        if let Some(delay) = self.cfg.backplane.retry_delay(send.attempt + 1) {
            coord.tally.bp_retries += 1;
            coord.retries.push(BpSend {
                t: t + delay,
                attempt: send.attempt + 1,
                ..send
            });
            return;
        }
        if partition {
            coord.tally.bp_partition_drops += 1;
        } else {
            coord.tally.bp_spike_drops += 1;
        }
        self.log_bp_drop(coord, &send);
    }

    /// Account a finally-dropped backplane message in the packet log —
    /// scoped to the instrumented vehicle's traffic, like the per-event
    /// loop's capacity accounting.
    fn log_bp_drop(&self, coord: &mut Coordinator, send: &BpSend) {
        let veh = match &send.msg {
            BackplaneMsg::RelayData(d) => self.flow_vehicle(d.flow_src, d.flow_dst),
            BackplaneMsg::SalvageRequest { vehicle, .. }
            | BackplaneMsg::SalvageData { vehicle, .. } => *vehicle,
        };
        if veh != self.v0 {
            return;
        }
        let relay = match &send.msg {
            BackplaneMsg::RelayData(d) => Some((d.id, send.from)),
            _ => None,
        };
        coord.drop_seq += 1;
        let seq = SEQ_BARRIER + coord.drop_seq;
        coord.log_ops.push(LogOp {
            at: send.t,
            lane: send.from.label(),
            seq,
            op: LogOpKind::BackplaneDrop { relay },
        });
    }

    fn next_emit_seq(&self, sh: &mut Shard, lane: NodeId) -> u64 {
        let cell = sh.cells.get_mut(&lane).expect("cell");
        cell.emit_seq += 1;
        cell.emit_seq
    }

    fn log_op(&self, sh: &mut Shard, lane: NodeId, at: SimTime, op: LogOpKind) {
        let seq = self.next_emit_seq(sh, lane);
        sh.log_ops.push(LogOp {
            at,
            lane: lane.label(),
            seq,
            op,
        });
    }

    fn is_bs(&self, n: NodeId) -> bool {
        self.bs_ids.contains(&n)
    }

    /// Traffic direction of a data frame by its logical source.
    fn dir_of_src(&self, flow_src: NodeId) -> Direction {
        if self.is_bs(flow_src) {
            Direction::Downstream
        } else {
            Direction::Upstream
        }
    }

    /// The vehicle a data flow belongs to: the mobile end of the transfer.
    fn flow_vehicle(&self, flow_src: NodeId, flow_dst: NodeId) -> NodeId {
        if self.is_bs(flow_src) {
            flow_dst
        } else {
            flow_src
        }
    }

    // ------------------------------------------------------------------
    // Outcome assembly
    // ------------------------------------------------------------------

    fn assemble_outcome(self, horizon: SimTime) -> (RunOutcome, CoupledTiming) {
        let mut coord = self.coord.into_inner().expect("coordinator");
        let mut shards: Vec<Shard> = self
            .shards
            .into_iter()
            .map(|m| m.into_inner().expect("shard"))
            .collect();

        // Per-vehicle outcomes in fleet order.
        let mut vehicles_out: Vec<VehicleOutcome> = Vec::new();
        for &v in &self.vehicles {
            for sh in &mut shards {
                if let Some(host) = sh.cells.get_mut(&v).and_then(|c| c.host.as_mut()) {
                    vehicles_out.push(VehicleOutcome {
                        vehicle: v,
                        report: host
                            .driver
                            .as_mut()
                            .expect("driver present at run end")
                            .report(horizon),
                        anchor_switches: host.anchor_switches,
                        unroutable_down: host.unroutable_down,
                    });
                }
            }
        }
        assert!(!vehicles_out.is_empty(), "at least one workload vehicle");

        // Replay the buffered log ops in canonical order. Nested runs
        // also contribute each cluster's resolution ops and medium
        // transmissions (cluster order; the sort below interleaves all
        // streams by the partition-blind `(at, lane, seq)` key).
        for sh in &mut shards {
            coord.log_ops.append(&mut sh.log_ops);
        }
        let mut cluster_frames = 0u64;
        for m in self.cluster_rts {
            let mut rt = m.into_inner().expect("cluster rt");
            coord.log_ops.append(&mut rt.log_ops);
            cluster_frames += rt.medium.tx_count;
        }
        coord.log_ops.sort_by_key(|o| (o.at, o.lane, o.seq));
        let mut log = RunLog::new();
        for op in &coord.log_ops {
            apply_log_op(&mut log, op);
        }

        let events: u64 = shards.iter().map(|s| s.sched.dispatched()).sum();
        let salvaged: u64 = shards.iter().map(|s| s.salvaged).sum();
        let mut faults = coord.tally;
        for sh in &shards {
            faults.absorb(&sh.faults);
            for cell in sh.cells.values() {
                faults.blacklist_evictions +=
                    cell.endpoint.blacklist_evictions() + cell.carried_evictions;
            }
        }
        let timing = CoupledTiming {
            per_shard: shards.iter().map(|s| s.wall).collect(),
            serial: coord.serial_wall,
        };
        let outcome = RunOutcome {
            report: vehicles_out[0].report.clone(),
            anchor_switches: vehicles_out[0].anchor_switches,
            unroutable_down: vehicles_out.iter().map(|v| v.unroutable_down).sum(),
            vehicles: vehicles_out,
            salvaged,
            events,
            frames_tx: coord.medium.tx_count + cluster_frames,
            faults,
            log,
        };
        (outcome, timing)
    }
}

/// The first boundary of `cb` strictly after `t`, clamped to the horizon
/// — what a cluster's medium drains resolvable frames against. Past the
/// last boundary, `final_next` (horizon + 1 µs) lets frames ending
/// exactly at the horizon resolve, matching the flat loop's tail.
fn next_boundary(cb: &[SimTime], t: SimTime, horizon: SimTime, final_next: SimTime) -> SimTime {
    let i = cb.partition_point(|&x| x <= t);
    cb.get(i).map(|&n| n.min(horizon)).unwrap_or(final_next)
}

/// Apply one canonical log op through the [`LogSink`] event surface —
/// the same calls a streaming [`crate::binlog::BinaryRunLog`] would see,
/// so any sink observes the identical event sequence the in-memory
/// [`RunLog`] folds.
fn apply_log_op<S: LogSink>(log: &mut S, op: &LogOp) {
    match &op.op {
        LogOpKind::SourceTx {
            id,
            dir,
            aux_set,
            aux_heard,
            dst_heard,
        } => log.source_tx(
            op.at,
            *id,
            *dir,
            aux_set.clone(),
            aux_heard.clone(),
            *dst_heard,
        ),
        LogOpKind::AckHeard { id, heard_by, dir } => {
            log.ack_attach(op.at, *id, heard_by);
            log.ack_tx(op.at, *dir);
        }
        LogOpKind::Relay {
            id,
            by,
            via_backplane,
            reached,
        } => log.relay(op.at, *id, *by, *via_backplane, *reached),
        LogOpKind::Decision {
            id,
            aux,
            prob,
            relayed,
        } => log.decision(op.at, *id, *aux, *prob, *relayed),
        LogOpKind::Delivered { id, dir } => {
            log.deliver_mark(op.at, *id);
            log.ledger_delivered(op.at, *dir);
        }
        LogOpKind::WirelessTx { dir } => log.wireless_tx(op.at, *dir),
        LogOpKind::BackplaneTx => log.backplane_tx(op.at),
        LogOpKind::BackplaneDrop { relay } => {
            log.backplane_drop_count(op.at);
            if let Some((id, by)) = relay {
                log.relay(op.at, *id, *by, true, false);
            }
        }
        LogOpKind::AuxSample { sec, size } => log.aux_sample(op.at, *sec, *size),
    }
}
