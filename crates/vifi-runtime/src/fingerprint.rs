//! Canonical run-outcome fingerprints.
//!
//! The shard-equivalence suite needs to assert that two [`RunOutcome`]s
//! are *bit-identical* — every probe outcome, delay, log record and
//! counter equal, floats compared by bit pattern. Comparing the structs
//! field-by-field in every test would be brittle (a new field silently
//! escapes the comparison), so the runtime owns one canonical digest:
//! every field of the outcome, in a fixed order, folded into an FNV-1a
//! hash. Floats contribute their IEEE-754 bit patterns (`f64::to_bits`),
//! so `0.0 != -0.0` and NaNs are distinguished — exactly the "same bits"
//! contract a deterministic simulator promises.
//!
//! [`RunOutcome`]: crate::RunOutcome

/// FNV-1a accumulator with typed `push_*` helpers. Each push also folds in
/// a length/tag where the encoding would otherwise be ambiguous (e.g. two
/// adjacent vectors), so distinct structures cannot collide by
/// concatenation.
#[derive(Clone, Debug)]
pub struct Fingerprint {
    state: u64,
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprint {
    /// FNV-1a offset basis.
    pub fn new() -> Self {
        Fingerprint {
            state: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Fold one u64 into the digest, byte by byte (FNV-1a).
    pub fn push_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Fold a boolean.
    pub fn push_bool(&mut self, v: bool) {
        self.push_u64(v as u64);
    }

    /// Fold a float by bit pattern.
    pub fn push_f64(&mut self, v: f64) {
        self.push_u64(v.to_bits());
    }

    /// Fold a usize (as u64; the simulator never exceeds 2^64 items).
    pub fn push_len(&mut self, v: usize) {
        self.push_u64(v as u64);
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Types that can fold themselves into a [`Fingerprint`].
pub trait Fingerprintable {
    /// Fold every observable field into `fp`, in a fixed order.
    fn fingerprint_into(&self, fp: &mut Fingerprint);

    /// Convenience: digest of this value alone.
    fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        self.fingerprint_into(&mut fp);
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinguishes_float_bit_patterns() {
        let mut a = Fingerprint::new();
        a.push_f64(0.0);
        let mut b = Fingerprint::new();
        b.push_f64(-0.0);
        assert_ne!(a.finish(), b.finish(), "0.0 and -0.0 differ by bits");
    }

    #[test]
    fn order_matters() {
        let mut a = Fingerprint::new();
        a.push_u64(1);
        a.push_u64(2);
        let mut b = Fingerprint::new();
        b.push_u64(2);
        b.push_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn deterministic() {
        let digest = || {
            let mut fp = Fingerprint::new();
            fp.push_u64(42);
            fp.push_f64(1.5);
            fp.push_bool(true);
            fp.push_len(7);
            fp.finish()
        };
        assert_eq!(digest(), digest());
    }
}
